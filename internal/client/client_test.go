package client

import (
	"math/rand"
	"net"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/server"
	"repro/internal/services"
	"repro/internal/wire"
)

// learnRepo learns a small Cassandra repository for client tests.
func learnRepo(t testing.TB, seed int64) *core.Repository {
	t.Helper()
	svc := services.NewCassandra()
	rng := rand.New(rand.NewSource(seed))
	prof, err := core.NewProfiler(svc, rng)
	if err != nil {
		t.Fatal(err)
	}
	tuner, err := core.NewScaleOutTuner(svc, svc.MaxAllocation().Type, svc.MinInstances, svc.MaxInstances)
	if err != nil {
		t.Fatal(err)
	}
	var workloads []services.Workload
	for c := 100.0; c <= 460; c += 30 {
		workloads = append(workloads, services.Workload{Clients: c, Mix: svc.DefaultMix()})
	}
	repo, _, err := core.Learn(core.LearnConfig{
		Profiler: prof, Tuner: tuner, Workloads: workloads, Rng: rng,
	})
	if err != nil {
		t.Fatal(err)
	}
	return repo
}

// foreseen profiles a signature the repository recognizes.
func foreseen(t testing.TB, repo *core.Repository, seed int64, clients float64) []float64 {
	t.Helper()
	svc := services.NewCassandra()
	prof, err := core.NewProfiler(svc, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	sig, err := prof.Profile(services.Workload{Clients: clients, Mix: svc.DefaultMix()}, repo.EventsRef())
	if err != nil {
		t.Fatal(err)
	}
	return sig.Values
}

// startDaemon serves a repository under the template name on a real
// loopback listener, returning the daemon address.
func startDaemon(t testing.TB, templates map[string]*core.Repository, cfg server.Config) (string, *server.Server) {
	t.Helper()
	cfg.Templates = map[string]*core.Handle{}
	for name, repo := range templates {
		h, err := core.NewHandle(repo)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Templates[name] = h
	}
	s, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return strings.TrimPrefix(ts.URL, "http://"), s
}

func newClient(t testing.TB, addr string, enc wire.Encoding) *Client {
	t.Helper()
	c, err := New(Config{Addr: addr, Encoding: enc})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// TestClientEndToEnd drives every client call against a live daemon
// in both encodings: lookups (single and batched), classify, put/get,
// install, stats, templates, snapshotless admin errors.
func TestClientEndToEnd(t *testing.T) {
	repo := learnRepo(t, 61)
	addr, _ := startDaemon(t, map[string]*core.Repository{"cassandra": repo}, server.Config{})
	vals := foreseen(t, repo, 62, 300)

	for _, enc := range []wire.Encoding{wire.EncodingBinary, wire.EncodingJSON} {
		c := newClient(t, addr, enc)
		src, err := c.Source("cassandra", repo.EventsRef())
		if err != nil {
			t.Fatal(err)
		}
		if len(src.Events()) != len(repo.EventsRef()) {
			t.Fatal("events mismatch")
		}

		// Single lookup: the learned bucket-0 entry must hit.
		sig := &core.Signature{Events: repo.EventsRef(), Values: vals}
		res, err := src.Lookup(sig, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Hit || res.Unforeseen || res.Allocation.Count <= 0 {
			t.Fatalf("enc %v: lookup: %+v", enc, res)
		}
		// And it matches the in-process decision bit for bit.
		direct, err := repo.Lookup(sig, 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.Class != direct.Class || res.Certainty != direct.Certainty ||
			res.Hit != direct.Hit || res.Allocation != direct.Allocation {
			t.Fatalf("enc %v: remote %+v != in-process %+v", enc, res, direct)
		}

		// Batched decide.
		var req wire.Request
		var resp wire.Response
		req.SetTemplate("cassandra")
		for i := 0; i < 8; i++ {
			req.AppendRow(vals)
		}
		if err := c.Decide(true, &req, &resp); err != nil {
			t.Fatal(err)
		}
		if len(resp.Results) != 8 || !resp.Results[7].Hit {
			t.Fatalf("enc %v: batch: %+v", enc, resp)
		}
		req.Reset()
		req.SetTemplate("cassandra")
		req.AppendRow(vals)
		if err := c.Decide(false, &req, &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Lookup || resp.Results[0].Hit {
			t.Fatalf("enc %v: classify leaked lookup fields: %+v", enc, resp)
		}

		// Put → Get round trip.
		if err := src.Put(0, 5, cloud.Allocation{Type: cloud.XLarge, Count: 3}); err != nil {
			t.Fatal(err)
		}
		alloc, ok, err := src.Get(0, 5)
		if err != nil || !ok || alloc.Count != 3 || alloc.Type.Name != "xlarge" {
			t.Fatalf("enc %v: get: %+v %v %v", enc, alloc, ok, err)
		}
		if _, ok, err := src.Get(0, 15); err != nil || ok {
			t.Fatalf("enc %v: get miss: %v %v", enc, ok, err)
		}
	}

	c := newClient(t, addr, wire.EncodingBinary)

	// Stats and templates.
	st, err := c.Stats("cassandra")
	if err != nil {
		t.Fatal(err)
	}
	if st.Template != "cassandra" || st.Decisions == 0 || st.Classes < 2 {
		t.Fatalf("stats: %+v", st)
	}
	infos, err := c.Templates()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].Template != "cassandra" || len(infos[0].Events) == 0 {
		t.Fatalf("templates: %+v", infos)
	}

	// Install a second template, then source it with fetched events.
	repo2 := learnRepo(t, 63)
	v, err := c.Install("cassandra-b", repo2)
	if err != nil {
		t.Fatal(err)
	}
	if v != 1 {
		t.Fatalf("install version %d, want 1", v)
	}
	src2, err := c.Source("cassandra-b", nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := src2.Lookup(&core.Signature{Events: repo2.EventsRef(), Values: foreseen(t, repo2, 64, 300)}, 0)
	if err != nil || !res.Hit {
		t.Fatalf("installed template lookup: %+v %v", res, err)
	}
	if _, err := c.Source("missing", nil); err == nil {
		t.Fatal("sourcing an unknown template must fail")
	}

	// API errors surface status and body, and are not retried.
	before := c.Retries()
	var req wire.Request
	var resp wire.Response
	req.SetTemplate("nope")
	req.AppendRow(vals)
	err = c.Decide(true, &req, &resp)
	apiErr, ok := err.(*APIError)
	if !ok || apiErr.Status != 400 || !strings.Contains(apiErr.Body, "nope") {
		t.Fatalf("unknown template error: %v", err)
	}
	if c.Retries() != before {
		t.Error("HTTP-level error must not be retried")
	}
}

// TestClientRetryBackoff pins the transport retry: a flaky listener
// that kills the first connection attempt mid-request is retried on a
// fresh connection and the call succeeds.
func TestClientRetryBackoff(t *testing.T) {
	repo := learnRepo(t, 65)
	addr, _ := startDaemon(t, map[string]*core.Repository{"cassandra": repo}, server.Config{})

	// A proxy listener that severs the first N connections on first
	// read, then pipes transparently.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var mu sync.Mutex
	kills := 2
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			mu.Lock()
			kill := kills > 0
			if kill {
				kills--
			}
			mu.Unlock()
			go func(conn net.Conn) {
				defer conn.Close()
				buf := make([]byte, 4096)
				n, err := conn.Read(buf)
				if err != nil {
					return
				}
				if kill {
					return // sever after the request starts
				}
				up, err := net.Dial("tcp", addr)
				if err != nil {
					return
				}
				defer up.Close()
				// Replay what we read, then pipe both ways.
				if _, err := up.Write(buf[:n]); err != nil {
					return
				}
				done := make(chan struct{}, 2)
				go func() { _, _ = copyConn(up, conn); done <- struct{}{} }()
				go func() { _, _ = copyConn(conn, up); done <- struct{}{} }()
				<-done
				<-done
			}(conn)
		}
	}()

	c, err := New(Config{Addr: ln.Addr().String(), Retries: 3, Backoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	src, err := c.Source("cassandra", repo.EventsRef())
	if err != nil {
		t.Fatal(err)
	}
	vals := foreseen(t, repo, 66, 300)
	res, err := src.Lookup(&core.Signature{Events: repo.EventsRef(), Values: vals}, 0)
	if err != nil {
		t.Fatalf("lookup through flaky transport: %v", err)
	}
	if !res.Hit {
		t.Fatalf("lookup: %+v", res)
	}
	if c.Retries() == 0 {
		t.Error("expected at least one transport retry")
	}
}

func copyConn(dst, src net.Conn) (int64, error) {
	buf := make([]byte, 32<<10)
	var total int64
	for {
		n, err := src.Read(buf)
		if n > 0 {
			if _, werr := dst.Write(buf[:n]); werr != nil {
				return total, werr
			}
			total += int64(n)
		}
		if err != nil {
			return total, err
		}
	}
}

// TestClientCoalescing pins batch coalescing: concurrent single
// lookups merge into fewer wire requests, every caller still gets its
// own correct decision, and buckets never mix.
func TestClientCoalescing(t *testing.T) {
	repo := learnRepo(t, 67)
	addr, srv := startDaemon(t, map[string]*core.Repository{"cassandra": repo}, server.Config{})
	c, err := New(Config{
		Addr:     addr,
		Coalesce: CoalesceConfig{MaxBatch: 8, MaxDelay: 2 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	src, err := c.Source("cassandra", repo.EventsRef())
	if err != nil {
		t.Fatal(err)
	}

	// Seed a bucket-2 entry so bucket routing is observable.
	if err := src.Put(0, 2, cloud.Allocation{Type: cloud.Large, Count: 9}); err != nil {
		t.Fatal(err)
	}

	vals := foreseen(t, repo, 68, 300)
	direct0, err := repo.Lookup(&core.Signature{Events: repo.EventsRef(), Values: vals}, 0)
	if err != nil {
		t.Fatal(err)
	}

	const callers = 48
	var wg sync.WaitGroup
	errs := make([]error, callers)
	results := make([]core.LookupResult, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			bucket := 0
			if i%2 == 1 {
				bucket = 2
			}
			sig := &core.Signature{Events: repo.EventsRef(), Values: vals}
			results[i], errs[i] = src.Lookup(sig, bucket)
		}(i)
	}
	wg.Wait()
	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if i%2 == 0 {
			if results[i] != direct0 {
				t.Fatalf("caller %d (bucket 0): %+v != %+v", i, results[i], direct0)
			}
		} else if !results[i].Hit || results[i].Allocation.Count != 9 {
			t.Fatalf("caller %d (bucket 2): %+v", i, results[i])
		}
	}

	// Coalescing must have merged callers into far fewer requests.
	st := srv.StatsSnapshot()
	if st.LookupReqs >= callers {
		t.Errorf("coalescing sent %d wire requests for %d lookups", st.LookupReqs, callers)
	}
	if st.Decisions != callers { // the comparison lookup was in-process
		t.Errorf("decisions %d, want %d", st.Decisions, callers)
	}
}
