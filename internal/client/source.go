package client

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/wire"
)

// CoalesceConfig tunes batch coalescing on template sources: lookups
// issued concurrently by many goroutines against the same
// (template, bucket) are merged into one batched wire request.
type CoalesceConfig struct {
	// MaxBatch flushes a batch when it reaches this many signatures
	// (default 16). Zero MaxBatch and MaxDelay disables coalescing.
	MaxBatch int
	// MaxDelay flushes a non-full batch this long after its first
	// signature — the latency bound a lookup pays for sharing a round
	// trip (default 500µs when MaxBatch is unset). MaxDelay == 0 with
	// MaxBatch > 0 means flush-on-full only: no timer is armed, and a
	// lookup waits until MaxBatch-1 peers join its batch. That shape
	// fits steady high-rate callers that never want a partial flush.
	MaxDelay time.Duration
}

func (c CoalesceConfig) enabled() bool { return c.MaxBatch > 0 || c.MaxDelay > 0 }

func (c *CoalesceConfig) defaults() {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 16
		// Only delay-driven coalescing was asked for; without a
		// default delay the batch would wait forever for 15 peers.
		if c.MaxDelay <= 0 {
			c.MaxDelay = 500 * time.Microsecond
		}
	}
	if c.MaxDelay < 0 {
		c.MaxDelay = 0
	}
}

// TemplateSource binds a client to one remote template and implements
// core.DecisionSource, so a controller (or a whole fleet of them)
// drives the remote daemon exactly like an in-process repository.
// Safe for concurrent use.
type TemplateSource struct {
	c        *Client
	template string
	events   []metrics.Event
	scratch  sync.Pool // *decideScratch: per-goroutine wire state
	coal     *coalescer
}

// decideScratch is the reusable wire state of one in-flight decision.
type decideScratch struct {
	req  wire.Request
	resp wire.Response
}

// Source binds the client to a remote template. events is the
// template's signature tuple — the caller usually knows it (it
// learned or installed the repository); pass nil to fetch it from
// the daemon's /v1/templates listing.
func (c *Client) Source(template string, events []metrics.Event) (*TemplateSource, error) {
	if events == nil {
		infos, err := c.Templates()
		if err != nil {
			return nil, err
		}
		for _, info := range infos {
			if info.Template == template {
				events = info.Events
				break
			}
		}
		if events == nil {
			return nil, fmt.Errorf("client: daemon serves no template %q", template)
		}
	}
	s := &TemplateSource{c: c, template: template, events: events}
	s.scratch.New = func() any { return &decideScratch{} }
	if c.cfg.Coalesce.enabled() {
		cfg := c.cfg.Coalesce
		cfg.defaults()
		s.coal = newCoalescer(s, cfg)
	}
	return s, nil
}

// Events implements core.DecisionSource.
func (s *TemplateSource) Events() []metrics.Event { return s.events }

// Lookup implements core.DecisionSource: one signature, one decision,
// over the wire (coalesced into a shared batch when enabled).
func (s *TemplateSource) Lookup(sig *core.Signature, bucket int) (core.LookupResult, error) {
	if err := sig.Validate(); err != nil {
		return core.LookupResult{}, err
	}
	if len(sig.Values) != len(s.events) {
		return core.LookupResult{}, fmt.Errorf("client: signature width %d, template %q expects %d",
			len(sig.Values), s.template, len(s.events))
	}
	if s.coal != nil {
		return s.coal.lookup(sig.Values, bucket)
	}
	sc := s.scratch.Get().(*decideScratch)
	defer s.scratch.Put(sc)
	sc.req.Reset()
	sc.req.SetTemplate(s.template)
	sc.req.Bucket = bucket
	sc.req.AppendRow(sig.Values)
	if err := s.c.Decide(true, &sc.req, &sc.resp); err != nil {
		return core.LookupResult{}, err
	}
	return decisionToLookup(&sc.resp.Results[0]), nil
}

// LookupBatch sends a caller-assembled batch for template-routed
// lookup; req's template field is overwritten with the source's. The
// fleet's load generators and the decision proxy use this shape.
func (s *TemplateSource) LookupBatch(req *wire.Request, resp *wire.Response) error {
	req.SetTemplate(s.template)
	return s.c.Decide(true, req, resp)
}

// decisionToLookup maps a wire decision row to the library type.
func decisionToLookup(d *wire.Decision) core.LookupResult {
	res := core.LookupResult{
		Class:      d.Class,
		Certainty:  d.Certainty,
		Unforeseen: d.Unforeseen,
		Hit:        d.Hit,
	}
	if d.Hit {
		res.Allocation = cloud.Allocation{Type: d.Type.Instance(), Count: d.Count}
	}
	return res
}

// Get implements core.DecisionSource via POST /v1/get (off the hot
// path: the controller probes it only on interference escalation).
func (s *TemplateSource) Get(class, bucket int) (cloud.Allocation, bool, error) {
	var out struct {
		Hit   bool   `json:"hit"`
		Type  string `json:"type"`
		Count int    `json:"count"`
	}
	err := s.c.postJSON("/v1/get", map[string]any{
		"template": s.template, "class": class, "bucket": bucket,
	}, &out)
	if err != nil {
		return cloud.Allocation{}, false, err
	}
	if !out.Hit {
		return cloud.Allocation{}, false, nil
	}
	typ, err := cloud.TypeByName(out.Type)
	if err != nil {
		return cloud.Allocation{}, false, err
	}
	return cloud.Allocation{Type: typ, Count: out.Count}, true, nil
}

// Put implements core.DecisionSource via POST /v1/put.
func (s *TemplateSource) Put(class, bucket int, alloc cloud.Allocation) error {
	return s.c.postJSON("/v1/put", map[string]any{
		"template": s.template, "class": class, "bucket": bucket,
		"type": alloc.Type.Name, "count": alloc.Count,
	}, nil)
}

var _ core.DecisionSource = (*TemplateSource)(nil)

// coalescer merges concurrent single lookups into batched requests,
// one open batch per interference bucket.
type coalescer struct {
	src *TemplateSource
	cfg CoalesceConfig

	mu      sync.Mutex
	pending map[int]*openBatch
}

// openBatch accumulates rows until full or its delay fires.
type openBatch struct {
	bucket  int
	opened  time.Time
	req     wire.Request
	waiters []chan batchResult
	timer   *time.Timer
	flushed bool
}

type batchResult struct {
	res core.LookupResult
	err error
}

func newCoalescer(src *TemplateSource, cfg CoalesceConfig) *coalescer {
	return &coalescer{src: src, cfg: cfg, pending: map[int]*openBatch{}}
}

// lookup joins (or opens) the bucket's batch and waits for its row's
// decision.
func (co *coalescer) lookup(values []float64, bucket int) (core.LookupResult, error) {
	done := make(chan batchResult, 1)
	co.mu.Lock()
	b := co.pending[bucket]
	if b == nil {
		b = &openBatch{bucket: bucket, opened: time.Now()}
		b.req.SetTemplate(co.src.template)
		b.req.Bucket = bucket
		co.pending[bucket] = b
		// MaxDelay == 0 means flush-on-full only: arming
		// time.AfterFunc(0) here would fire immediately and flush
		// batches of one, silently disabling coalescing.
		if co.cfg.MaxDelay > 0 {
			batch := b
			b.timer = time.AfterFunc(co.cfg.MaxDelay, func() { co.flush(batch) })
		}
	}
	b.req.AppendRow(values)
	b.waiters = append(b.waiters, done)
	full := b.req.Rows() >= co.cfg.MaxBatch
	co.mu.Unlock()
	if full {
		co.flush(b)
	}
	r := <-done
	return r.res, r.err
}

// flush sends the batch (once) and fans results out to its waiters.
func (co *coalescer) flush(b *openBatch) {
	co.mu.Lock()
	if b.flushed {
		co.mu.Unlock()
		return
	}
	b.flushed = true
	if b.timer != nil {
		b.timer.Stop()
	}
	if co.pending[b.bucket] == b {
		delete(co.pending, b.bucket)
	}
	co.mu.Unlock()
	// The coalesce delay is what the batch's first signature paid for
	// sharing a round trip: open-to-flush, whether the flush came from
	// the MaxBatch fill or the MaxDelay timer.
	co.src.c.coalesceDelay.Record(time.Since(b.opened))

	var resp wire.Response
	err := co.src.c.Decide(true, &b.req, &resp)
	// A response that does not carry exactly one result per waiter
	// must fan an error to everyone: indexing resp.Results[i] past a
	// short batch would panic this goroutine — possibly the shared
	// time.AfterFunc timer goroutine — and strand every other waiter
	// on <-done forever.
	if err == nil && len(resp.Results) != len(b.waiters) {
		err = fmt.Errorf("client: coalesced batch of %d signatures got %d results",
			len(b.waiters), len(resp.Results))
	}
	for i, w := range b.waiters {
		if err != nil {
			w <- batchResult{err: err}
			continue
		}
		w <- batchResult{res: decisionToLookup(&resp.Results[i])}
	}
}
