package client

import (
	"errors"
	"fmt"
	"net"
	"time"

	"repro/internal/obs"
	"repro/internal/wire"
)

// Raw-TCP decision transport. Decisions travel as wire envelopes
// over persistent connections (see internal/wire stream framing):
// one hello exchange per connection negotiating the encoding, then
// request envelopes answered by id. The admin plane (install, stats,
// snapshot) stays on HTTP — this transport exists purely to strip
// HTTP overhead from the hot path. Retry policy matches the HTTP
// plane: transport failures retry on fresh connections with capped,
// jittered backoff; server rejections arrive as error envelopes and
// are returned as *APIError without retry.

// maxTCPResponseBytes bounds one response envelope — matches the
// server's default request-body limit.
const maxTCPResponseBytes = 8 << 20

// tcpConn is one pooled raw-TCP decision connection: the negotiated
// stream plus a connection-local request-id counter. The Stream owns
// the read/write scratch, so steady-state traffic on a pooled
// connection allocates nothing.
type tcpConn struct {
	nc     net.Conn
	st     *wire.Stream
	nextID uint32
	tcbuf  [obs.WireContextLen]byte // trace-context prefix scratch
}

// dialTCP establishes and handshakes a decision connection.
func (c *Client) dialTCP() (*tcpConn, error) {
	nc, err := net.DialTimeout("tcp", c.cfg.TCPAddr, c.cfg.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("client: dial tcp %s: %w", c.cfg.TCPAddr, err)
	}
	if tc, ok := nc.(*net.TCPConn); ok {
		_ = tc.SetNoDelay(true)
	}
	if err := nc.SetDeadline(time.Now().Add(c.cfg.DialTimeout)); err != nil {
		nc.Close()
		return nil, err
	}
	st := wire.NewStream(nc)
	if err := st.WriteClientHello(c.cfg.Encoding); err != nil {
		nc.Close()
		return nil, fmt.Errorf("client: tcp hello: %w", err)
	}
	enc, err := st.ReadServerHello()
	if err != nil {
		nc.Close()
		return nil, fmt.Errorf("client: tcp hello: %w", err)
	}
	if enc != c.cfg.Encoding {
		nc.Close()
		return nil, fmt.Errorf("client: server negotiated encoding %d, want %d", enc, c.cfg.Encoding)
	}
	return &tcpConn{nc: nc, st: st}, nil
}

// getTCP borrows a pooled decision connection or dials a fresh one.
func (c *Client) getTCP() (*tcpConn, error) {
	select {
	case cn := <-c.tcpIdle:
		return cn, nil
	default:
		return c.dialTCP()
	}
}

// releaseTCP returns a healthy connection to the pool.
func (c *Client) releaseTCP(cn *tcpConn, healthy bool) {
	if cn == nil {
		return
	}
	if !healthy || c.closed.Load() {
		cn.nc.Close()
		return
	}
	select {
	case c.tcpIdle <- cn:
	default:
		cn.nc.Close()
	}
}

// decideTCP carries one encoded decision payload over the raw-TCP
// plane, retrying transport failures like roundTrip does for HTTP.
// The steady-state binary path allocates nothing once the pool and
// stream scratch have warmed up (pinned by TestClientTCPLookupZeroAlloc).
func (c *Client) decideTCP(lookup bool, payload []byte, resp *wire.Response, tc obs.TraceContext) error {
	var lastErr error
	for attempt := 0; attempt <= c.cfg.Retries; attempt++ {
		if attempt > 0 {
			if err := c.backoffWait(attempt); err != nil {
				return fmt.Errorf("%w (last transport error: %v)", err, lastErr)
			}
		}
		cn, err := c.getTCP()
		if err != nil {
			lastErr = err
			continue
		}
		apiErr, err := c.exchangeTCP(cn, lookup, payload, resp, tc)
		if err != nil {
			cn.nc.Close()
			lastErr = err
			continue
		}
		if apiErr != nil {
			// The server parsed and rejected the request; the stream
			// stays synchronized, so the connection is reusable and the
			// rejection — like an HTTP 4xx — is never retried.
			c.releaseTCP(cn, true)
			return apiErr
		}
		c.releaseTCP(cn, true)
		return nil
	}
	return fmt.Errorf("client: tcp decide failed after %d attempts: %w", c.cfg.Retries+1, lastErr)
}

// Ping round-trips one empty ping-flagged envelope on the raw-TCP
// decision plane: accept, hello, framing, and the serving loop are all
// exercised without touching a repository. Deliberately no retries —
// a health probe wants the plane's state now, and its caller owns the
// failure policy.
func (c *Client) Ping() error {
	if c.cfg.TCPAddr == "" {
		return errors.New("client: ping needs a raw-TCP decision address")
	}
	cn, err := c.getTCP()
	if err != nil {
		return err
	}
	if err := cn.nc.SetDeadline(time.Now().Add(c.cfg.RequestTimeout)); err != nil {
		cn.nc.Close()
		return err
	}
	cn.nextID++
	id := cn.nextID
	if err := cn.st.WriteEnvelope(id, wire.StreamFlagPing, nil); err != nil {
		cn.nc.Close()
		return err
	}
	gotID, gotFlags, _, err := cn.st.ReadEnvelope(maxTCPResponseBytes)
	if err != nil {
		cn.nc.Close()
		return err
	}
	if gotID != id || gotFlags&wire.StreamFlagPing == 0 {
		cn.nc.Close()
		return fmt.Errorf("client: tcp ping answered with id %d flags %#x", gotID, gotFlags)
	}
	c.releaseTCP(cn, true)
	return nil
}

// exchangeTCP writes one request envelope and reads its response on
// cn, decoding into resp. A non-nil *APIError is a server-side
// rejection (error envelope); err covers transport and framing
// failures, after which the caller must close the connection.
func (c *Client) exchangeTCP(cn *tcpConn, lookup bool, payload []byte, resp *wire.Response, tc obs.TraceContext) (*APIError, error) {
	if err := cn.nc.SetDeadline(time.Now().Add(c.cfg.RequestTimeout)); err != nil {
		return nil, err
	}
	cn.nextID++
	id := cn.nextID
	var flags byte
	if lookup {
		flags = wire.StreamFlagLookup
	}
	var prefix []byte
	if tc.Valid() {
		// A sampled decision slides its 16-byte trace context ahead of
		// the frame under StreamFlagTrace; the envelope writer splices
		// the two parts without an intermediate concatenation.
		flags |= wire.StreamFlagTrace
		prefix = tc.AppendWire(cn.tcbuf[:0])
	}
	if err := cn.st.WriteEnvelopeParts(id, flags, prefix, payload); err != nil {
		return nil, err
	}
	gotID, gotFlags, body, err := cn.st.ReadEnvelope(maxTCPResponseBytes)
	if err != nil {
		return nil, err
	}
	if gotID != id {
		// A response for a request this connection did not just send
		// means the stream is desynchronized; only a close recovers.
		return nil, fmt.Errorf("client: tcp response id %d for request %d", gotID, id)
	}
	if gotFlags&wire.StreamFlagError != 0 {
		return &APIError{Status: 400, Body: string(body)}, nil
	}
	if err := resp.Decode(c.cfg.Encoding, body); err != nil {
		return nil, err
	}
	return nil, nil
}
