package client

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/url"
	"strconv"

	"repro/internal/core"
	"repro/internal/metrics"
)

// Control-plane calls. These are off the decision hot path and use
// encoding/json over the same pooled transport.

// postJSON sends a JSON body and decodes the JSON reply into out
// (skipped when out is nil).
func (c *Client) postJSON(path string, body any, out any) error {
	payload, err := json.Marshal(body)
	if err != nil {
		return err
	}
	cn, resp, err := c.roundTrip("POST", path, "application/json", payload)
	if err != nil {
		return err
	}
	if out != nil {
		err = json.Unmarshal(resp, out)
	}
	c.release(cn, err == nil)
	return err
}

// getJSON fetches path and decodes the JSON reply into out.
func (c *Client) getJSON(path string, out any) error {
	cn, resp, err := c.roundTrip("GET", path, "", nil)
	if err != nil {
		return err
	}
	err = json.Unmarshal(resp, out)
	c.release(cn, err == nil)
	return err
}

// Install publishes a learned repository under the template id:
// POST /v1/install. The daemon creates the template or hot-swaps the
// existing one (version increments); the returned version is the one
// now serving.
func (c *Client) Install(template string, repo *core.Repository) (uint64, error) {
	var buf bytes.Buffer
	if err := core.SaveRepository(repo, &buf); err != nil {
		return 0, err
	}
	return c.InstallSerialized(template, buf.Bytes(), 0)
}

// InstallSerialized publishes an already-serialized repository
// (core.SaveRepository bytes), optionally forcing the published
// version (0 = the daemon's next local increment). The replicated
// tier fans one serialization out to N replicas at one agreed
// version, so replicas always report identical versions for identical
// content.
func (c *Client) InstallSerialized(template string, data []byte, version uint64) (uint64, error) {
	path := "/v1/install?template=" + url.QueryEscape(template)
	if version != 0 {
		path += "&version=" + strconv.FormatUint(version, 10)
	}
	cn, resp, err := c.roundTrip("POST", path, "application/json", data)
	if err != nil {
		return 0, fmt.Errorf("client: install template %q: %w", template, err)
	}
	var out struct {
		Version uint64 `json:"version"`
	}
	err = json.Unmarshal(resp, &out)
	c.release(cn, err == nil)
	if err != nil {
		return 0, err
	}
	return out.Version, nil
}

// DumpSerialized fetches one template's live repository as the
// serialized core.SaveRepository bytes plus the version they were
// dumped at — the read half of InstallSerialized. A registry resyncs
// a rejoining replica by dumping a healthy donor and installing the
// bytes verbatim at the same version.
func (c *Client) DumpSerialized(template string) (uint64, []byte, error) {
	var out struct {
		Version uint64          `json:"version"`
		Repo    json.RawMessage `json:"repo"`
	}
	path := "/v1/dump"
	if template != "" {
		path += "?template=" + url.QueryEscape(template)
	}
	if err := c.getJSON(path, &out); err != nil {
		return 0, nil, fmt.Errorf("client: dump template %q: %w", template, err)
	}
	if out.Version == 0 || len(out.Repo) == 0 {
		return 0, nil, fmt.Errorf("client: dump template %q: empty document", template)
	}
	return out.Version, []byte(out.Repo), nil
}

// Stats is the client's view of one template's /v1/stats document
// plus the server-wide counters the control plane cares about.
type Stats struct {
	Template     string  `json:"template"`
	Version      uint64  `json:"version"`
	Classes      int     `json:"classes"`
	Entries      int     `json:"entries"`
	Hits         int64   `json:"hits"`
	Misses       int64   `json:"misses"`
	HitRate      float64 `json:"hit_rate"`
	Decisions    int64   `json:"decisions"`
	Relearns     int64   `json:"relearns"`
	RelearnFails int64   `json:"relearn_failures"`
	Templates    int     `json:"templates"`
	BadRequests  int64   `json:"bad_requests"`
}

// Stats fetches one template's statistics ("" = the daemon's default
// template).
func (c *Client) Stats(template string) (Stats, error) {
	path := "/v1/stats"
	if template != "" {
		path += "?template=" + url.QueryEscape(template)
	}
	var st Stats
	if err := c.getJSON(path, &st); err != nil {
		return Stats{}, err
	}
	return st, nil
}

// TemplateInfo is one entry of the daemon's template listing.
type TemplateInfo struct {
	Template string          `json:"template"`
	Version  uint64          `json:"version"`
	Classes  int             `json:"classes"`
	Entries  int             `json:"entries"`
	Events   []metrics.Event `json:"events"`
}

// Templates lists the daemon's installed templates.
func (c *Client) Templates() ([]TemplateInfo, error) {
	var infos []TemplateInfo
	if err := c.getJSON("/v1/templates", &infos); err != nil {
		return nil, err
	}
	return infos, nil
}

// Snapshot asks the daemon to persist every template now.
func (c *Client) Snapshot() error {
	return c.postJSON("/v1/snapshot", struct{}{}, nil)
}

// HealthTemplate is one template's slice of the health document.
type HealthTemplate struct {
	Version uint64 `json:"version"`
	Entries int    `json:"entries"`
}

// Health is the daemon's GET /v1/health document.
type Health struct {
	Status        string                    `json:"status"`
	UptimeSeconds float64                   `json:"uptime_seconds"`
	Templates     map[string]HealthTemplate `json:"templates"`
	Relearning    bool                      `json:"relearning"`
}

// Health fetches the daemon's liveness/version surface. Unlike
// decisions this is never retried across connections: a probe wants
// the daemon's state now, not after a backoff — callers own the
// failure policy. (Transport retries still apply; they are cheap and
// a probe interval bounds them anyway.)
func (c *Client) Health() (Health, error) {
	var h Health
	if err := c.getJSON("/v1/health", &h); err != nil {
		return Health{}, err
	}
	if h.Status != "ok" {
		return h, fmt.Errorf("client: daemon health status %q", h.Status)
	}
	return h, nil
}

// PostRawJSON relays a pre-encoded JSON body to path and returns an
// owned copy of the response body. This is the registry's fan-out
// primitive for control-plane endpoints (put, get) whose request
// bodies it forwards verbatim rather than re-marshaling.
func (c *Client) PostRawJSON(path string, body []byte) ([]byte, error) {
	cn, resp, err := c.roundTrip("POST", path, "application/json", body)
	if err != nil {
		return nil, err
	}
	out := append([]byte(nil), resp...) // resp aliases conn scratch
	c.release(cn, true)
	return out, nil
}
