package client

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/url"

	"repro/internal/core"
	"repro/internal/metrics"
)

// Control-plane calls. These are off the decision hot path and use
// encoding/json over the same pooled transport.

// postJSON sends a JSON body and decodes the JSON reply into out
// (skipped when out is nil).
func (c *Client) postJSON(path string, body any, out any) error {
	payload, err := json.Marshal(body)
	if err != nil {
		return err
	}
	cn, resp, err := c.roundTrip("POST", path, "application/json", payload)
	if err != nil {
		return err
	}
	if out != nil {
		err = json.Unmarshal(resp, out)
	}
	c.release(cn, err == nil)
	return err
}

// getJSON fetches path and decodes the JSON reply into out.
func (c *Client) getJSON(path string, out any) error {
	cn, resp, err := c.roundTrip("GET", path, "", nil)
	if err != nil {
		return err
	}
	err = json.Unmarshal(resp, out)
	c.release(cn, err == nil)
	return err
}

// Install publishes a learned repository under the template id:
// POST /v1/install. The daemon creates the template or hot-swaps the
// existing one (version increments); the returned version is the one
// now serving.
func (c *Client) Install(template string, repo *core.Repository) (uint64, error) {
	var buf bytes.Buffer
	if err := core.SaveRepository(repo, &buf); err != nil {
		return 0, err
	}
	cn, resp, err := c.roundTrip("POST", "/v1/install?template="+url.QueryEscape(template),
		"application/json", buf.Bytes())
	if err != nil {
		return 0, fmt.Errorf("client: install template %q: %w", template, err)
	}
	var out struct {
		Version uint64 `json:"version"`
	}
	err = json.Unmarshal(resp, &out)
	c.release(cn, err == nil)
	if err != nil {
		return 0, err
	}
	return out.Version, nil
}

// Stats is the client's view of one template's /v1/stats document
// plus the server-wide counters the control plane cares about.
type Stats struct {
	Template     string  `json:"template"`
	Version      uint64  `json:"version"`
	Classes      int     `json:"classes"`
	Entries      int     `json:"entries"`
	Hits         int64   `json:"hits"`
	Misses       int64   `json:"misses"`
	HitRate      float64 `json:"hit_rate"`
	Decisions    int64   `json:"decisions"`
	Relearns     int64   `json:"relearns"`
	RelearnFails int64   `json:"relearn_failures"`
	Templates    int     `json:"templates"`
	BadRequests  int64   `json:"bad_requests"`
}

// Stats fetches one template's statistics ("" = the daemon's default
// template).
func (c *Client) Stats(template string) (Stats, error) {
	path := "/v1/stats"
	if template != "" {
		path += "?template=" + url.QueryEscape(template)
	}
	var st Stats
	if err := c.getJSON(path, &st); err != nil {
		return Stats{}, err
	}
	return st, nil
}

// TemplateInfo is one entry of the daemon's template listing.
type TemplateInfo struct {
	Template string          `json:"template"`
	Version  uint64          `json:"version"`
	Classes  int             `json:"classes"`
	Entries  int             `json:"entries"`
	Events   []metrics.Event `json:"events"`
}

// Templates lists the daemon's installed templates.
func (c *Client) Templates() ([]TemplateInfo, error) {
	var infos []TemplateInfo
	if err := c.getJSON("/v1/templates", &infos); err != nil {
		return nil, err
	}
	return infos, nil
}

// Snapshot asks the daemon to persist every template now.
func (c *Client) Snapshot() error {
	return c.postJSON("/v1/snapshot", struct{}{}, nil)
}
