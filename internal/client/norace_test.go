//go:build !race

package client

// raceEnabled: see race_test.go.
const raceEnabled = false
