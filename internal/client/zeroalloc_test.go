package client

import (
	"bufio"
	"fmt"
	"math/rand"
	"net"
	"testing"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/wire"
)

// cannedServer is a hand-rolled HTTP responder that answers every
// request with the same prebuilt bytes, itself allocation-free at
// steady state — so testing.AllocsPerRun around a client call
// measures the client alone. (Against a real dejavud the global
// allocation counter would also see net/http's per-request garbage on
// the server goroutine.)
func cannedServer(t testing.TB, response []byte) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				br := bufio.NewReaderSize(conn, 16<<10)
				body := make([]byte, 0, 16<<10)
				for {
					// Headers: find Content-Length, then the blank line.
					cl := -1
					for {
						line, err := readLine(br)
						if err != nil {
							return
						}
						if len(line) == 0 {
							break
						}
						if v, ok := headerValue(line, "content-length"); ok {
							if cl, ok = atoiBytes(v); !ok {
								return
							}
						}
					}
					if cl < 0 || cl > cap(body) {
						return
					}
					if _, err := ioReadFull(br, body[:cl]); err != nil {
						return
					}
					if _, err := conn.Write(response); err != nil {
						return
					}
				}
			}(conn)
		}
	}()
	return ln.Addr().String()
}

// TestClientLookupZeroAlloc pins the acceptance criterion on the
// client side: a steady-state binary batched lookup — request build,
// HTTP write, response framing, wire decode — performs zero heap
// allocations.
func TestClientLookupZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector degrades sync.Pool caching and distorts allocation counts")
	}
	const batch = 16
	const width = 6

	// Canned response: a version-3 lookup reply with `batch` rows.
	resp := wire.Response{Version: 3, Lookup: true}
	for i := 0; i < batch; i++ {
		resp.Results = append(resp.Results, wire.Decision{Class: 1, Certainty: 0.9, Hit: true, Type: 2, Count: 4})
	}
	frame := resp.AppendBinary(nil)
	canned := []byte(fmt.Sprintf("HTTP/1.1 200 OK\r\nContent-Type: %s\r\nContent-Length: %d\r\n\r\n",
		wire.ContentTypeBinary, len(frame)))
	canned = append(canned, frame...)
	addr := cannedServer(t, canned)

	c, err := New(Config{Addr: addr, Encoding: wire.EncodingBinary, MaxIdleConns: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	rng := rand.New(rand.NewSource(9))
	var req wire.Request
	var out wire.Response
	req.SetTemplate("cassandra")
	row := make([]float64, width)
	for i := 0; i < batch; i++ {
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		req.AppendRow(row)
	}

	// Warm the connection and every scratch buffer.
	for i := 0; i < 3; i++ {
		if err := c.Decide(true, &req, &out); err != nil {
			t.Fatal(err)
		}
	}
	if len(out.Results) != batch || !out.Results[0].Hit {
		t.Fatalf("canned decode: %+v", out)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := c.Decide(true, &req, &out); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("client binary lookup path allocates %.1f times per batch, want 0", allocs)
	}

	// The single-signature DecisionSource path stays allocation-free
	// too (its per-source scratch pools the wire state).
	events := make([]metrics.Event, width)
	for i := range events {
		events[i] = metrics.Event(fmt.Sprintf("ev%d", i))
	}
	// One-row canned reply for the source path.
	one := wire.Response{Version: 3, Lookup: true, Results: []wire.Decision{{Class: 1, Certainty: 0.9, Hit: true, Type: 2, Count: 4}}}
	oneFrame := one.AppendBinary(nil)
	oneCanned := []byte(fmt.Sprintf("HTTP/1.1 200 OK\r\nContent-Type: %s\r\nContent-Length: %d\r\n\r\n",
		wire.ContentTypeBinary, len(oneFrame)))
	oneCanned = append(oneCanned, oneFrame...)
	addr2 := cannedServer(t, oneCanned)
	c2, err := New(Config{Addr: addr2, Encoding: wire.EncodingBinary, MaxIdleConns: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	src, err := c2.Source("cassandra", events)
	if err != nil {
		t.Fatal(err)
	}
	sig := &core.Signature{Events: events, Values: row}
	for i := 0; i < 3; i++ {
		if _, err := src.Lookup(sig, 2); err != nil {
			t.Fatal(err)
		}
	}
	allocs = testing.AllocsPerRun(200, func() {
		if _, err := src.Lookup(sig, 2); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("source single-lookup path allocates %.1f times per call, want 0", allocs)
	}
}
