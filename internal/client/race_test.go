//go:build race

package client

// raceEnabled reports that this test binary was built with the race
// detector, which deliberately degrades sync.Pool caching (random
// drops to expose races) and so distorts allocation counts.
const raceEnabled = true
