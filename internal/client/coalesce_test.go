package client

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/server"
	"repro/internal/wire"
)

// cannedResults builds the HTTP bytes of a lookup reply carrying n
// decisions, for stub servers that deliberately mis-size batches.
func cannedResults(n int) []byte {
	resp := wire.Response{Version: 3, Lookup: true}
	for i := 0; i < n; i++ {
		resp.Results = append(resp.Results, wire.Decision{Class: 1, Certainty: 0.9, Hit: true, Type: 2, Count: 4})
	}
	frame := resp.AppendBinary(nil)
	head := []byte(fmt.Sprintf("HTTP/1.1 200 OK\r\nContent-Type: %s\r\nContent-Length: %d\r\n\r\n",
		wire.ContentTypeBinary, len(frame)))
	return append(head, frame...)
}

// sourceEvents fabricates a width-w event tuple for stub-server
// sources.
func sourceEvents(w int) []metrics.Event {
	events := make([]metrics.Event, w)
	for i := range events {
		events[i] = metrics.Event(fmt.Sprintf("ev%d", i))
	}
	return events
}

// TestCoalesceFlushShortBatch is the S-fix regression for the
// coalescer's fan-out: a flush whose response carries fewer results
// than the batch has waiters must fan an error to every waiter. The
// pre-fix code indexed resp.Results[i] unchecked, panicking the
// flushing goroutine and stranding the remaining waiters forever.
func TestCoalesceFlushShortBatch(t *testing.T) {
	// The stub always answers with 2 results; the batch under flush
	// carries 2 rows but 3 waiters, modeling any drift between the
	// request assembled and the waiters registered.
	addr := cannedServer(t, cannedResults(2))
	c, err := New(Config{Addr: addr, Encoding: wire.EncodingBinary})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	src, err := c.Source("cassandra", sourceEvents(3))
	if err != nil {
		t.Fatal(err)
	}
	co := newCoalescer(src, CoalesceConfig{MaxBatch: 8, MaxDelay: time.Hour})

	b := &openBatch{bucket: 0}
	b.req.SetTemplate("cassandra")
	b.req.AppendRow([]float64{1, 2, 3})
	b.req.AppendRow([]float64{4, 5, 6})
	waiters := make([]chan batchResult, 3)
	for i := range waiters {
		waiters[i] = make(chan batchResult, 1)
		b.waiters = append(b.waiters, waiters[i])
	}
	co.flush(b)
	for i, w := range waiters {
		select {
		case r := <-w:
			if r.err == nil {
				t.Errorf("waiter %d: got a decision from a short batch: %+v", i, r.res)
			} else if !strings.Contains(r.err.Error(), "results") {
				t.Errorf("waiter %d: error %v", i, r.err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("waiter %d stranded after short-batch flush", i)
		}
	}
}

// TestCoalesceTruncatedBatchResponse drives the same defect end to
// end: a daemon answering a coalesced 2-row batch with 1 result must
// error out both lookups — neither caller hangs, nothing panics.
func TestCoalesceTruncatedBatchResponse(t *testing.T) {
	addr := cannedServer(t, cannedResults(1))
	c, err := New(Config{
		Addr:     addr,
		Encoding: wire.EncodingBinary,
		Coalesce: CoalesceConfig{MaxBatch: 2, MaxDelay: 0}, // flush exactly on full
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	events := sourceEvents(3)
	src, err := c.Source("cassandra", events)
	if err != nil {
		t.Fatal(err)
	}
	errs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			sig := &core.Signature{Events: events, Values: []float64{1, 2, 3}}
			_, err := src.Lookup(sig, 0)
			errs <- err
		}()
	}
	for i := 0; i < 2; i++ {
		select {
		case err := <-errs:
			if err == nil {
				t.Error("lookup against a truncating daemon succeeded")
			}
		case <-time.After(5 * time.Second):
			t.Fatal("lookup stranded by truncated batch response")
		}
	}
}

// TestCoalesceFlushOnFullOnly is the S-fix regression for
// MaxDelay == 0: with MaxBatch > 0 it must mean flush-on-full only.
// The pre-fix code defaulted the zero delay to 500µs (and would have
// armed time.AfterFunc(0) otherwise), flushing partial batches and
// silently disabling the requested semantics.
func TestCoalesceFlushOnFullOnly(t *testing.T) {
	repo := learnRepo(t, 67)
	addr, srv := startDaemon(t, map[string]*core.Repository{"cassandra": repo}, server.Config{})
	c, err := New(Config{
		Addr:     addr,
		Coalesce: CoalesceConfig{MaxBatch: 3, MaxDelay: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	src, err := c.Source("cassandra", repo.EventsRef())
	if err != nil {
		t.Fatal(err)
	}
	vals := foreseen(t, repo, 68, 300)
	lookup := func(done chan<- error) {
		sig := &core.Signature{Events: repo.EventsRef(), Values: vals}
		_, err := src.Lookup(sig, 0)
		done <- err
	}
	done := make(chan error, 3)
	go lookup(done)
	go lookup(done)
	// No timer may flush the 2-row batch: nothing completes and no
	// wire request leaves while the batch is short of MaxBatch.
	time.Sleep(30 * time.Millisecond)
	select {
	case err := <-done:
		t.Fatalf("partial batch flushed with MaxDelay == 0 (lookup returned %v)", err)
	default:
	}
	if got := srv.StatsSnapshot().LookupReqs; got != 0 {
		t.Fatalf("%d wire requests left before the batch was full", got)
	}
	// The third lookup fills the batch; everyone completes.
	go lookup(done)
	for i := 0; i < 3; i++ {
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("full batch did not flush")
		}
	}
	if got := srv.StatsSnapshot().LookupReqs; got != 1 {
		t.Errorf("full batch took %d wire requests, want 1", got)
	}
}

// TestCoalesceTimerFullRace hammers the timer-driven and full-driven
// flush paths against each other (run under -race in CI): every
// lookup must complete exactly once whichever side wins the flush.
func TestCoalesceTimerFullRace(t *testing.T) {
	repo := learnRepo(t, 67)
	addr, _ := startDaemon(t, map[string]*core.Repository{"cassandra": repo}, server.Config{})
	c, err := New(Config{
		Addr:     addr,
		Coalesce: CoalesceConfig{MaxBatch: 2, MaxDelay: 50 * time.Microsecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	src, err := c.Source("cassandra", repo.EventsRef())
	if err != nil {
		t.Fatal(err)
	}
	vals := foreseen(t, repo, 68, 300)
	const callers = 64
	var wg sync.WaitGroup
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sig := &core.Signature{Events: repo.EventsRef(), Values: vals}
			if i%3 == 0 {
				time.Sleep(time.Duration(i) * 10 * time.Microsecond)
			}
			_, errs[i] = src.Lookup(sig, 0)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("caller %d: %v", i, err)
		}
	}
}
