// Package client is the dejavu decision-plane client library: the
// one way commands and control planes talk to a dejavud daemon.
// It owns a pool of persistent connections, speaks the shared wire
// protocol (internal/wire) in either encoding, retries transport
// failures with exponential backoff, and exposes each remote template
// as a core.DecisionSource so the same controller code that drives an
// in-process repository drives a remote daemon.
//
// The transport is a deliberately lean HTTP/1.1 implementation over
// pooled TCP connections rather than net/http: the decision path's
// request build, response framing, and wire decode all run in
// caller-owned scratch, so a steady-state batched lookup performs
// zero heap allocations end to end on the client side
// (TestClientLookupZeroAlloc pins this against a canned-response
// server). Control-plane calls (install, stats, templates, put, get)
// use encoding/json — they are off the hot path.
//
// Optional batch coalescing merges concurrent single-signature
// lookups into batched wire requests per (template, bucket), trading
// a bounded queueing delay for fewer round trips — the right shape
// for a fleet of controllers sharing one client.
package client

import (
	"bufio"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/wire"
)

// Transport names the decision-path transport.
const (
	// TransportHTTP carries decisions as HTTP/1.1 POSTs (the
	// compat/admin plane's protocol).
	TransportHTTP = "http"
	// TransportTCP carries decisions as wire envelopes over
	// persistent raw TCP connections.
	TransportTCP = "tcp"
)

// Config assembles a Client.
type Config struct {
	// Addr is the dejavud HTTP host:port. Required unless the client
	// is decisions-only over TCP (TCPAddr set, or Addr itself given
	// as "tcp://host:port"); admin calls (install, stats, snapshot)
	// always use this HTTP plane.
	Addr string
	// Transport selects the decision-path transport: TransportHTTP
	// (the default) or TransportTCP. Setting TCPAddr implies
	// TransportTCP.
	Transport string
	// TCPAddr is the daemon's raw-TCP decision port, host:port with
	// an optional tcp:// prefix. Decisions use it when Transport is
	// TransportTCP; the admin plane stays on Addr.
	TCPAddr string
	// Encoding selects the decision-path codec (default
	// wire.EncodingBinary; the JSON compatibility path is for old
	// daemons and debugging).
	Encoding wire.Encoding
	// MaxIdleConns bounds the connection pool (default 8). More
	// concurrent requests than this still proceed — each dials its
	// own connection — but only MaxIdleConns survive for reuse.
	MaxIdleConns int
	// Retries is how many times a transport failure is retried on a
	// fresh connection (default 2). HTTP-level errors (4xx/5xx) are
	// never retried.
	Retries int
	// Backoff is the first retry's delay, doubling per attempt
	// (default 10ms).
	Backoff time.Duration
	// MaxBackoff caps the doubling (default 1s): without a cap a long
	// retry budget sleeps for the full exponential sum during an
	// outage.
	MaxBackoff time.Duration
	// RetryJitterSeed seeds the retry jitter stream (default 1).
	// Fleet harnesses derive distinct seeds per client so coordinated
	// failures do not retry in lockstep into a recovering daemon.
	RetryJitterSeed int64
	// DialTimeout bounds connection establishment (default 5s).
	DialTimeout time.Duration
	// RequestTimeout bounds one round trip (default 30s).
	RequestTimeout time.Duration
	// Coalesce enables batch coalescing on template sources created
	// from this client (zero value disables it).
	Coalesce CoalesceConfig
	// TraceEvery samples every Nth Decide with a trace context (0
	// disables sampling): the sampled request carries a DejaVu-Trace
	// header (HTTP) or a wire.StreamFlagTrace envelope (TCP), every
	// hop downstream appends a span to its own ring, and the client
	// records the root span in Spans(). Sampling draws ids from
	// obs.NextID, never from seeded simulation streams, so enabling it
	// cannot perturb a deterministic run's decisions.
	TraceEvery int
}

func (c *Config) defaults() error {
	// "tcp://host:port" as the address is shorthand for a
	// decisions-only TCP client (no admin plane).
	if strings.HasPrefix(c.Addr, "tcp://") {
		if c.TCPAddr == "" {
			c.TCPAddr = strings.TrimPrefix(c.Addr, "tcp://")
		}
		c.Addr = ""
	}
	c.TCPAddr = strings.TrimPrefix(c.TCPAddr, "tcp://")
	if c.Transport == "" {
		if c.TCPAddr != "" {
			c.Transport = TransportTCP
		} else {
			c.Transport = TransportHTTP
		}
	}
	switch c.Transport {
	case TransportHTTP:
		if c.Addr == "" {
			return errors.New("client: Config.Addr must be set")
		}
	case TransportTCP:
		if c.TCPAddr == "" {
			return errors.New("client: TransportTCP needs Config.TCPAddr (or a tcp:// Addr)")
		}
	default:
		return fmt.Errorf("client: unknown transport %q", c.Transport)
	}
	if c.MaxIdleConns <= 0 {
		c.MaxIdleConns = 8
	}
	if c.Retries < 0 {
		c.Retries = 0
	} else if c.Retries == 0 {
		c.Retries = 2
	}
	if c.Backoff <= 0 {
		c.Backoff = 10 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = time.Second
	}
	if c.RetryJitterSeed == 0 {
		c.RetryJitterSeed = 1
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 5 * time.Second
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	return nil
}

// Client is a pooled dejavud client; safe for concurrent use.
type Client struct {
	cfg      Config
	idle     chan *conn    // pooled HTTP connections
	tcpIdle  chan *tcpConn // pooled raw-TCP decision connections
	payloads sync.Pool     // *[]byte: decision payload encode scratch
	closed   atomic.Bool
	// closeCh is closed by Close so retries sleeping in backoff wake
	// immediately instead of holding shutdown for the backoff sum.
	closeCh chan struct{}

	// jitter randomizes retry backoff so coordinated clients do not
	// retry in lockstep. Guarded by jitterMu: the retry path is cold.
	jitterMu sync.Mutex
	jitter   *rand.Rand

	// retried counts transport-level retries, for telemetry/tests.
	retried atomic.Int64

	// Local instrumentation (obs histograms are atomic-add only, so
	// the zero-alloc decision path stays zero-alloc with them live).
	reqLat        obs.Histogram // whole Decide: encode, transport (incl. retries), decode
	retryWait     obs.Histogram // time spent sleeping in retry backoff
	coalesceDelay obs.Histogram // first-row-append → flush queueing delay
	decides       atomic.Int64  // Decide calls, drives TraceEvery sampling
	spans         *obs.SpanRing // root spans of sampled decisions
}

// APIError is a non-2xx response from the daemon.
type APIError struct {
	Status int
	Body   string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("client: dejavud returned HTTP %d: %s", e.Status, e.Body)
}

// New validates the configuration and returns a client. No connection
// is dialed until the first call.
func New(cfg Config) (*Client, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	c := &Client{
		cfg:     cfg,
		idle:    make(chan *conn, cfg.MaxIdleConns),
		tcpIdle: make(chan *tcpConn, cfg.MaxIdleConns),
		closeCh: make(chan struct{}),
		jitter:  rng.New(cfg.RetryJitterSeed),
	}
	if cfg.TraceEvery > 0 {
		c.spans = obs.NewSpanRing(obs.DefaultSpanRingSize)
	}
	return c, nil
}

// Spans exposes the client's trace ring: the root spans of sampled
// decisions (nil unless Config.TraceEvery is set).
func (c *Client) Spans() *obs.SpanRing { return c.spans }

// Close drops the idle pools and wakes any retry sleeping in backoff.
// In-flight requests finish on their own connections.
func (c *Client) Close() {
	if !c.closed.CompareAndSwap(false, true) {
		return
	}
	close(c.closeCh)
	for {
		select {
		case cn := <-c.idle:
			cn.nc.Close()
		case cn := <-c.tcpIdle:
			cn.nc.Close()
		default:
			return
		}
	}
}

// Retries reports how many transport-level retries the client has
// performed.
func (c *Client) Retries() int64 { return c.retried.Load() }

// LocalStats is the client's own instrumentation snapshot — latency
// digests recorded by this process, as opposed to Stats(), which
// fetches the daemon's /v1/stats document.
type LocalStats struct {
	// Decides counts Decide calls (each one batch).
	Decides int64 `json:"decides"`
	// Retries counts transport-level retry attempts.
	Retries int64 `json:"retries"`
	// Request digests whole-Decide latency: encode, transport
	// (including retries), decode.
	Request obs.Summary `json:"request"`
	// RetryWait digests time spent sleeping in retry backoff.
	RetryWait obs.Summary `json:"retry_wait"`
	// CoalesceDelay digests the queueing delay coalesced lookups spent
	// waiting for their batch to flush.
	CoalesceDelay obs.Summary `json:"coalesce_delay"`
}

// StatsSnapshot digests the client's local histograms.
func (c *Client) StatsSnapshot() LocalStats {
	return LocalStats{
		Decides:       c.decides.Load(),
		Retries:       c.retried.Load(),
		Request:       c.reqLat.Snapshot().Summary(),
		RetryWait:     c.retryWait.Snapshot().Summary(),
		CoalesceDelay: c.coalesceDelay.Snapshot().Summary(),
	}
}

// RequestLatency exposes the raw whole-Decide latency snapshot (the
// Summary digest lives in StatsSnapshot).
func (c *Client) RequestLatency() obs.Snapshot { return c.reqLat.Snapshot() }

// conn is one pooled connection plus its per-connection scratch: the
// request build buffer and the response body buffer warm up to the
// workload's message sizes and are reused for every request the
// connection carries.
type conn struct {
	nc   net.Conn
	br   *bufio.Reader
	wbuf []byte // request head+payload build scratch
	body []byte // response body scratch
	// dead marks a connection the peer half closed (Connection:
	// close): its body is still deliverable, but release must drop it
	// instead of pooling a closed socket.
	dead bool
}

func (c *Client) dial() (*conn, error) {
	nc, err := net.DialTimeout("tcp", c.cfg.Addr, c.cfg.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("client: dial %s: %w", c.cfg.Addr, err)
	}
	if tc, ok := nc.(*net.TCPConn); ok {
		_ = tc.SetNoDelay(true)
	}
	return &conn{nc: nc, br: bufio.NewReaderSize(nc, 16<<10)}, nil
}

// get borrows a pooled connection or dials a fresh one.
func (c *Client) get() (*conn, error) {
	select {
	case cn := <-c.idle:
		return cn, nil
	default:
		return c.dial()
	}
}

// release returns a healthy connection to the pool (closing it when
// it is dead, the pool is full, or the client is closed).
func (c *Client) release(cn *conn, healthy bool) {
	if cn == nil {
		return
	}
	if !healthy || cn.dead || c.closed.Load() {
		cn.nc.Close()
		return
	}
	select {
	case c.idle <- cn:
	default:
		cn.nc.Close()
	}
}

// roundTrip performs one HTTP exchange, retrying transport failures
// on fresh connections with exponential backoff. On success the
// returned conn holds the response body in its scratch; the caller
// must parse body before calling release. A non-2xx status is
// returned as *APIError with the connection already released —
// HTTP-level errors are never retried.
func (c *Client) roundTrip(method, path, contentType string, payload []byte) (*conn, []byte, error) {
	return c.roundTripCtx(method, path, contentType, payload, obs.TraceContext{})
}

// roundTripCtx is roundTrip plus an optional trace context that rides
// the request as a DejaVu-Trace header (decision sampling; admin
// calls pass the zero context through roundTrip).
func (c *Client) roundTripCtx(method, path, contentType string, payload []byte, tc obs.TraceContext) (*conn, []byte, error) {
	if c.cfg.Addr == "" {
		return nil, nil, errors.New("client: no HTTP address configured (decisions-only tcp:// client)")
	}
	var lastErr error
	for attempt := 0; attempt <= c.cfg.Retries; attempt++ {
		if attempt > 0 {
			if err := c.backoffWait(attempt); err != nil {
				return nil, nil, fmt.Errorf("%w (last transport error: %v)", err, lastErr)
			}
		}
		cn, err := c.get()
		if err != nil {
			lastErr = err
			continue
		}
		status, body, reusable, err := c.exchange(cn, method, path, contentType, payload, tc)
		if err != nil {
			cn.nc.Close()
			lastErr = err
			continue
		}
		if status < 200 || status > 299 {
			apiErr := &APIError{Status: status, Body: string(body)}
			c.release(cn, reusable)
			return nil, nil, apiErr
		}
		if !reusable {
			// The caller still parses body (it lives in cn scratch);
			// the dead mark keeps release from pooling the closed
			// socket afterwards.
			cn.nc.Close()
			cn.dead = true
		}
		return cn, body, nil
	}
	return nil, nil, fmt.Errorf("client: %s %s failed after %d attempts: %w",
		method, path, c.cfg.Retries+1, lastErr)
}

// errClosed reports a Close arriving while a retry slept in backoff.
var errClosed = errors.New("client: closed")

// backoffWait sleeps before retry number attempt (1-based), honoring
// three policies at once: the delay doubles per attempt, is capped at
// MaxBackoff, and carries seeded jitter in [½d, d] so coordinated
// clients spread their retries instead of stampeding a recovering
// daemon in lockstep. The sleep aborts immediately when Close is
// called.
func (c *Client) backoffWait(attempt int) error {
	c.retried.Add(1)
	d := c.cfg.Backoff << (attempt - 1)
	if d > c.cfg.MaxBackoff || d <= 0 { // <=0: shift overflow
		d = c.cfg.MaxBackoff
	}
	c.jitterMu.Lock()
	d = d/2 + time.Duration(c.jitter.Int63n(int64(d/2)+1))
	c.jitterMu.Unlock()
	start := time.Now()
	defer func() { c.retryWait.Record(time.Since(start)) }()
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-c.closeCh:
		return errClosed
	}
}

// exchange writes one request and reads one response on cn. The
// returned body aliases cn.body; reusable reports whether the
// connection may go back to the pool (false after Connection: close).
func (c *Client) exchange(cn *conn, method, path, contentType string, payload []byte, tc obs.TraceContext) (status int, body []byte, reusable bool, err error) {
	deadline := time.Now().Add(c.cfg.RequestTimeout)
	if err := cn.nc.SetDeadline(deadline); err != nil {
		return 0, nil, false, err
	}

	w := cn.wbuf[:0]
	w = append(w, method...)
	w = append(w, ' ')
	w = append(w, path...)
	w = append(w, " HTTP/1.1\r\nHost: "...)
	w = append(w, c.cfg.Addr...)
	if contentType != "" {
		w = append(w, "\r\nContent-Type: "...)
		w = append(w, contentType...)
	}
	if tc.Valid() {
		w = append(w, "\r\n"+obs.TraceHeader+": "...)
		w = tc.AppendHeader(w)
	}
	w = append(w, "\r\nContent-Length: "...)
	w = strconv.AppendInt(w, int64(len(payload)), 10)
	w = append(w, "\r\n\r\n"...)
	w = append(w, payload...)
	cn.wbuf = w
	if _, err := cn.nc.Write(w); err != nil {
		return 0, nil, false, err
	}

	// Status line.
	line, err := readLine(cn.br)
	if err != nil {
		return 0, nil, false, err
	}
	status, ok := parseStatusLine(line)
	if !ok {
		return 0, nil, false, fmt.Errorf("client: malformed status line %q", line)
	}

	// Headers: Content-Length frames the body; chunked responses are
	// decoded for robustness (the daemon sets Content-Length on every
	// decision response, so the hot path never takes that branch).
	contentLength := -1
	chunked := false
	connClose := false
	for {
		line, err := readLine(cn.br)
		if err != nil {
			return 0, nil, false, err
		}
		if len(line) == 0 {
			break
		}
		if v, ok := headerValue(line, "content-length"); ok {
			n, ok := atoiBytes(v)
			if !ok {
				return 0, nil, false, fmt.Errorf("client: bad Content-Length %q", v)
			}
			contentLength = n
		} else if v, ok := headerValue(line, "transfer-encoding"); ok {
			chunked = asciiEqualFold(v, "chunked")
		} else if v, ok := headerValue(line, "connection"); ok {
			connClose = asciiEqualFold(v, "close")
		}
	}

	body = cn.body[:0]
	switch {
	case chunked:
		if body, err = readChunked(cn.br, body); err != nil {
			return 0, nil, false, err
		}
	case contentLength >= 0:
		if cap(body) < contentLength {
			body = make([]byte, 0, contentLength)
		}
		body = body[:contentLength]
		if _, err := ioReadFull(cn.br, body); err != nil {
			return 0, nil, false, err
		}
	default:
		return 0, nil, false, errors.New("client: response without Content-Length or chunked framing")
	}
	cn.body = body
	return status, body, !connClose, nil
}

// readLine reads one CRLF-terminated line, returning it without the
// terminator. The slice aliases the bufio buffer — valid until the
// next read.
func readLine(br *bufio.Reader) ([]byte, error) {
	line, err := br.ReadSlice('\n')
	if err != nil {
		return nil, err
	}
	if n := len(line); n >= 2 && line[n-2] == '\r' {
		return line[:n-2], nil
	}
	return line[:len(line)-1], nil
}

// parseStatusLine extracts the status code from "HTTP/1.1 200 OK".
func parseStatusLine(line []byte) (int, bool) {
	sp := -1
	for i, c := range line {
		if c == ' ' {
			sp = i
			break
		}
	}
	if sp < 0 || len(line) < sp+4 {
		return 0, false
	}
	code := 0
	for _, c := range line[sp+1 : sp+4] {
		if c < '0' || c > '9' {
			return 0, false
		}
		code = code*10 + int(c-'0')
	}
	return code, true
}

// headerValue matches "Name: value" case-insensitively on the name,
// returning the trimmed value.
func headerValue(line []byte, lowerName string) ([]byte, bool) {
	if len(line) < len(lowerName)+1 {
		return nil, false
	}
	for i := 0; i < len(lowerName); i++ {
		c := line[i]
		if 'A' <= c && c <= 'Z' {
			c += 'a' - 'A'
		}
		if c != lowerName[i] {
			return nil, false
		}
	}
	if line[len(lowerName)] != ':' {
		return nil, false
	}
	v := line[len(lowerName)+1:]
	for len(v) > 0 && (v[0] == ' ' || v[0] == '\t') {
		v = v[1:]
	}
	for len(v) > 0 && (v[len(v)-1] == ' ' || v[len(v)-1] == '\t') {
		v = v[:len(v)-1]
	}
	return v, true
}

// atoiBytes parses a non-negative decimal without allocating (the
// strconv equivalents need a string).
func atoiBytes(b []byte) (int, bool) {
	if len(b) == 0 || len(b) > 18 {
		return 0, false
	}
	n := 0
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int(c-'0')
	}
	return n, true
}

func asciiEqualFold(b []byte, lower string) bool {
	if len(b) != len(lower) {
		return false
	}
	for i := 0; i < len(b); i++ {
		c := b[i]
		if 'A' <= c && c <= 'Z' {
			c += 'a' - 'A'
		}
		if c != lower[i] {
			return false
		}
	}
	return true
}

// ioReadFull is io.ReadFull without the interface indirection cost on
// the hot path (and without importing io for one call).
func ioReadFull(br *bufio.Reader, dst []byte) (int, error) {
	n := 0
	for n < len(dst) {
		m, err := br.Read(dst[n:])
		n += m
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// readChunked decodes a chunked transfer-encoded body.
func readChunked(br *bufio.Reader, dst []byte) ([]byte, error) {
	for {
		line, err := readLine(br)
		if err != nil {
			return dst, err
		}
		size := 0
		for _, c := range line {
			switch {
			case '0' <= c && c <= '9':
				size = size<<4 | int(c-'0')
			case 'a' <= c && c <= 'f':
				size = size<<4 | int(c-'a'+10)
			case 'A' <= c && c <= 'F':
				size = size<<4 | int(c-'A'+10)
			case c == ';':
				goto parsed // chunk extensions are ignored
			default:
				return dst, fmt.Errorf("client: bad chunk size %q", line)
			}
			if size > 1<<30 {
				return dst, errors.New("client: chunk too large")
			}
		}
	parsed:
		if size == 0 {
			// Trailer section: read to the blank line.
			for {
				line, err := readLine(br)
				if err != nil {
					return dst, err
				}
				if len(line) == 0 {
					return dst, nil
				}
			}
		}
		start := len(dst)
		for cap(dst) < start+size {
			dst = append(dst[:cap(dst)], 0)
		}
		dst = dst[:start+size]
		if _, err := ioReadFull(br, dst[start:]); err != nil {
			return dst, err
		}
		if _, err := readLine(br); err != nil { // chunk CRLF
			return dst, err
		}
	}
}

// Decide sends one decision batch and decodes the reply, both in the
// client's configured encoding. req must carry the target template
// (empty routes to the daemon's sole template). Transport failures
// are retried on fresh connections with exponential backoff
// (roundTrip owns that policy); HTTP-level rejections are returned as
// *APIError without retry. The steady-state binary path performs zero
// heap allocations once the payload pool and connection scratch have
// warmed up (pinned by TestClientLookupZeroAlloc).
func (c *Client) Decide(lookup bool, req *wire.Request, resp *wire.Response) error {
	return c.DecideTraced(lookup, req, resp, c.sampleTrace())
}

// sampleTrace decides whether this Decide carries a trace context:
// every TraceEvery-th call starts a fresh root trace. The untraced
// path costs one atomic add.
func (c *Client) sampleTrace() obs.TraceContext {
	n := c.decides.Add(1)
	if c.cfg.TraceEvery <= 0 || n%int64(c.cfg.TraceEvery) != 0 {
		return obs.TraceContext{}
	}
	return obs.NewContext()
}

// DecideTraced is Decide with an explicit trace context: a valid tc
// rides the wire (DejaVu-Trace header over HTTP, a trace-flagged
// envelope over TCP) so every hop downstream records a span, and the
// client records the root span in Spans(). The zero context is an
// ordinary untraced Decide.
func (c *Client) DecideTraced(lookup bool, req *wire.Request, resp *wire.Response, tc obs.TraceContext) error {
	start := time.Now()
	bufp, _ := c.payloads.Get().(*[]byte)
	if bufp == nil {
		bufp = new([]byte)
	}
	payload, err := req.Append(c.cfg.Encoding, (*bufp)[:0])
	*bufp = payload
	if err != nil {
		c.payloads.Put(bufp)
		return err // encoding errors are the caller's, never retried
	}
	if c.cfg.Transport == TransportTCP {
		err = c.decideTCP(lookup, payload, resp, tc)
	} else {
		err = c.decideHTTP(lookup, payload, resp, tc)
	}
	c.payloads.Put(bufp) // the transport has fully written (or abandoned) the payload
	elapsed := time.Since(start)
	c.reqLat.Record(elapsed)
	if tc.Valid() {
		// Root span: parent 0 marks the start of the chain.
		c.spans.RecordHop(obs.TraceContext{Trace: tc.Trace}, tc, "client", decideOp(lookup), start, elapsed)
	}
	if err != nil {
		return err
	}
	if len(resp.Results) != req.Rows() {
		return fmt.Errorf("client: %d results for %d signatures", len(resp.Results), req.Rows())
	}
	return nil
}

// decideOp names a decision for span purposes.
func decideOp(lookup bool) string {
	if lookup {
		return "lookup"
	}
	return "classify"
}

// decideHTTP carries one encoded decision payload over the HTTP
// plane and decodes the reply into resp.
func (c *Client) decideHTTP(lookup bool, payload []byte, resp *wire.Response, tc obs.TraceContext) error {
	path := "/v1/classify"
	if lookup {
		path = "/v1/lookup"
	}
	cn, body, err := c.roundTripCtx("POST", path, c.cfg.Encoding.ContentType(), payload, tc)
	if err != nil {
		return err
	}
	err = resp.Decode(c.cfg.Encoding, body)
	c.release(cn, err == nil)
	return err
}
