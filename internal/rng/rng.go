// Package rng provides the cheap deterministic random streams the
// fleet-scale paths share. Seeding math/rand's default source expands
// a 607-word lagged-Fibonacci table (~27µs); at vms=100 that
// per-VM seeding cost was a double-digit share of the fleet's run
// phase (ROADMAP "next perf frontier"). A splitmix64 stream instead
// seeds with a single integer write, so per-VM sources can be derived
// lazily from one fleet seed without any up-front expansion work.
//
// Streams from this package are deterministic and well mixed but are
// NOT the standard source's streams: paths whose fixed-seed outputs
// are golden-pinned (the paper-figure experiments) keep math/rand's
// default source.
package rng

import "math/rand"

// SplitMix64 is a tiny rand.Source64 (Vigna's splitmix64). The zero
// value is a valid source seeded with 0.
type SplitMix64 struct{ state uint64 }

// Uint64 returns the next value of the stream.
func (s *SplitMix64) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Int63 implements rand.Source.
func (s *SplitMix64) Int63() int64 { return int64(s.Uint64() >> 1) }

// Seed implements rand.Source.
func (s *SplitMix64) Seed(seed int64) { s.state = uint64(seed) }

// New returns a *rand.Rand over a fresh splitmix64 stream. Seed 0 is
// remapped to 1 so the zero seed still yields a usable stream
// distinct from accidental zero-value misuse.
func New(seed int64) *rand.Rand {
	if seed == 0 {
		seed = 1
	}
	return rand.New(&SplitMix64{state: uint64(seed)})
}

// Derive mixes a base seed with an item index into an independent
// per-item seed: item i's stream is the same no matter how many items
// precede it or in which order they are derived. One finalizer round
// of splitmix64 does the mixing, so deriving is a few ALU ops.
func Derive(base int64, i int) int64 {
	z := uint64(base) + (uint64(i)+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64((z ^ (z >> 31)) >> 1)
}
