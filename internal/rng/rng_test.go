package rng

import (
	"math/rand"
	"testing"
)

func TestDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Int63() != b.Int63() {
			t.Fatalf("same-seed streams diverged at draw %d", i)
		}
	}
	if New(42).Int63() == New(43).Int63() {
		t.Error("adjacent seeds should produce different first draws")
	}
}

func TestZeroSeedUsable(t *testing.T) {
	r := New(0)
	seen := map[int64]bool{}
	for i := 0; i < 10; i++ {
		seen[r.Int63()] = true
	}
	if len(seen) < 10 {
		t.Errorf("zero-seed stream repeated values: %d distinct of 10", len(seen))
	}
}

// TestDeriveOrderIndependent pins the property GenerateScenario relies
// on: item i's derived seed depends only on (base, i), never on how
// many other items exist or the order they are derived in.
func TestDeriveOrderIndependent(t *testing.T) {
	const base = 99
	want := Derive(base, 7)
	for i := 0; i < 7; i++ {
		Derive(base, i) // deriving others must not disturb item 7
	}
	if got := Derive(base, 7); got != want {
		t.Errorf("Derive(base, 7) changed across calls: %d != %d", got, want)
	}
	seen := map[int64]bool{}
	for i := 0; i < 1000; i++ {
		seen[Derive(base, i)] = true
	}
	if len(seen) != 1000 {
		t.Errorf("derived seeds collide: %d distinct of 1000", len(seen))
	}
}

// TestNormFloat64Usable exercises the interface the trace synthesizers
// consume (NormFloat64 via *rand.Rand) and sanity-checks the moments.
func TestNormFloat64Usable(t *testing.T) {
	r := New(7)
	var sum, sumSq float64
	const n = 20000
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if mean < -0.05 || mean > 0.05 {
		t.Errorf("NormFloat64 mean %.4f far from 0", mean)
	}
	if variance < 0.9 || variance > 1.1 {
		t.Errorf("NormFloat64 variance %.4f far from 1", variance)
	}
}

var _ rand.Source64 = (*SplitMix64)(nil)
