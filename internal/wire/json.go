package wire

import (
	"errors"
	"fmt"
	"math"
	"strconv"

	"repro/internal/cloud"
)

// JSON compatibility codec. The decision vocabulary is tiny —
// {"template":...,"bucket":...,"signature":[...]} /
// {"signatures":[[...]]} requests and
// {"version":...,"results":[{...}]} responses — and is parsed and
// emitted by hand into caller-owned scratch: encoding/json allocates
// per token, and the decision path must not allocate at steady state.
// The response bytes are byte-compatible with pre-wire dejavud, so a
// rolling upgrade can mix old and new peers on the JSON path.

// DecodeJSON fills the request from a JSON body. The request's
// buffers are reused; no allocation happens once they have warmed up
// to the workload's batch size. Template aliases body.
func (r *Request) DecodeJSON(body []byte) error {
	r.Reset()
	s := scanner{b: body}
	if err := s.expect('{'); err != nil {
		return err
	}
	if c, err := s.peek(); err != nil {
		return err
	} else if c == '}' {
		return errors.New("wire: request names no signature")
	}
	sawBatch := false
	for {
		k, err := s.key()
		if err != nil {
			return err
		}
		if err := s.expect(':'); err != nil {
			return err
		}
		switch string(k) { // compile-time optimized: no []byte->string alloc in a switch
		case "signature":
			if r.Single || sawBatch {
				return errors.New(`wire: "signature" and "signatures" are mutually exclusive and single-use`)
			}
			r.Single = true
			if r.vals, err = s.numberRow(r.vals[:0]); err != nil {
				return err
			}
			r.ends = append(r.ends, len(r.vals))
		case "signatures":
			if r.Single || sawBatch {
				return errors.New(`wire: "signature" and "signatures" are mutually exclusive and single-use`)
			}
			sawBatch = true
			if err := s.expect('['); err != nil {
				return err
			}
			c, err := s.peek()
			if err != nil {
				return err
			}
			if c == ']' {
				s.i++
				break
			}
			for {
				if r.vals, err = s.numberRow(r.vals); err != nil {
					return err
				}
				r.ends = append(r.ends, len(r.vals))
				c, err := s.peek()
				if err != nil {
					return err
				}
				s.i++
				if c == ']' {
					break
				}
				if c != ',' {
					return fmt.Errorf("wire: expected ',' or ']' at offset %d", s.i-1)
				}
			}
		case "bucket":
			v, err := s.number()
			if err != nil {
				return err
			}
			if v != math.Trunc(v) || v < 0 || v > 1<<20 {
				return fmt.Errorf("wire: bucket %v is not a small non-negative integer", v)
			}
			r.Bucket = int(v)
		case "template":
			t, err := s.key()
			if err != nil {
				return err
			}
			if len(t) > maxTemplateLen {
				return fmt.Errorf("wire: template id of %d bytes exceeds limit %d", len(t), maxTemplateLen)
			}
			r.Template = t
		default:
			if err := s.skipValue(); err != nil {
				return err
			}
		}
		c, err := s.peek()
		if err != nil {
			return err
		}
		s.i++
		if c == '}' {
			break
		}
		if c != ',' {
			return fmt.Errorf("wire: expected ',' or '}' at offset %d", s.i-1)
		}
	}
	if r.Rows() == 0 {
		return errors.New("wire: request contains no signatures")
	}
	return nil
}

// AppendJSON encodes the request as the JSON vocabulary appended to
// dst. Batches of one use the batched "signatures" form too — the
// server accepts both and the reply envelope is identical.
func (r *Request) AppendJSON(dst []byte) []byte {
	dst = append(dst, '{')
	if len(r.Template) > 0 {
		dst = append(dst, `"template":"`...)
		dst = append(dst, r.Template...)
		dst = append(dst, `",`...)
	}
	dst = append(dst, `"bucket":`...)
	dst = strconv.AppendInt(dst, int64(r.Bucket), 10)
	dst = append(dst, `,"signatures":[`...)
	for i := 0; i < r.Rows(); i++ {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = append(dst, '[')
		for j, v := range r.Row(i) {
			if j > 0 {
				dst = append(dst, ',')
			}
			dst = strconv.AppendFloat(dst, v, 'g', -1, 64)
		}
		dst = append(dst, ']')
	}
	return append(dst, ']', '}')
}

// AppendJSON encodes the response appended to dst, byte-compatible
// with the pre-wire dejavud reply envelope.
func (r *Response) AppendJSON(dst []byte) []byte {
	dst = append(dst, `{"version":`...)
	dst = strconv.AppendUint(dst, r.Version, 10)
	dst = append(dst, `,"results":[`...)
	for i := range r.Results {
		if i > 0 {
			dst = append(dst, ',')
		}
		d := &r.Results[i]
		dst = append(dst, `{"class":`...)
		dst = strconv.AppendInt(dst, int64(d.Class), 10)
		dst = append(dst, `,"certainty":`...)
		dst = strconv.AppendFloat(dst, d.Certainty, 'g', -1, 64)
		dst = append(dst, `,"unforeseen":`...)
		dst = strconv.AppendBool(dst, d.Unforeseen)
		if r.Lookup {
			dst = append(dst, `,"hit":`...)
			dst = strconv.AppendBool(dst, d.Hit)
			if d.Hit {
				dst = append(dst, `,"type":"`...)
				dst = append(dst, d.Type.Instance().Name...)
				dst = append(dst, `","count":`...)
				dst = strconv.AppendInt(dst, int64(d.Count), 10)
			}
		}
		dst = append(dst, '}')
	}
	return append(dst, ']', '}')
}

// DecodeJSON fills the response from a JSON reply envelope, reusing
// the Results buffer. Lookup is inferred from the presence of "hit"
// fields.
func (r *Response) DecodeJSON(body []byte) error {
	r.Reset()
	s := scanner{b: body}
	if err := s.expect('{'); err != nil {
		return err
	}
	if c, err := s.peek(); err != nil {
		return err
	} else if c == '}' {
		s.i++
		return nil
	}
	for {
		k, err := s.key()
		if err != nil {
			return err
		}
		if err := s.expect(':'); err != nil {
			return err
		}
		switch string(k) {
		case "version":
			v, err := s.number()
			if err != nil {
				return err
			}
			if v != math.Trunc(v) || v < 0 {
				return fmt.Errorf("wire: version %v is not a non-negative integer", v)
			}
			r.Version = uint64(v)
		case "results":
			if err := r.decodeJSONResults(&s); err != nil {
				return err
			}
		default:
			if err := s.skipValue(); err != nil {
				return err
			}
		}
		c, err := s.peek()
		if err != nil {
			return err
		}
		s.i++
		if c == '}' {
			return nil
		}
		if c != ',' {
			return fmt.Errorf("wire: expected ',' or '}' at offset %d", s.i-1)
		}
	}
}

func (r *Response) decodeJSONResults(s *scanner) error {
	if err := s.expect('['); err != nil {
		return err
	}
	c, err := s.peek()
	if err != nil {
		return err
	}
	if c == ']' {
		s.i++
		return nil
	}
	for {
		r.Results = append(r.Results, Decision{})
		if err := r.decodeJSONDecision(s, &r.Results[len(r.Results)-1]); err != nil {
			return err
		}
		c, err := s.peek()
		if err != nil {
			return err
		}
		s.i++
		if c == ']' {
			return nil
		}
		if c != ',' {
			return fmt.Errorf("wire: expected ',' or ']' at offset %d", s.i-1)
		}
	}
}

func (r *Response) decodeJSONDecision(s *scanner, d *Decision) error {
	if err := s.expect('{'); err != nil {
		return err
	}
	if c, err := s.peek(); err != nil {
		return err
	} else if c == '}' {
		s.i++
		return nil
	}
	for {
		k, err := s.key()
		if err != nil {
			return err
		}
		if err := s.expect(':'); err != nil {
			return err
		}
		switch string(k) {
		case "class":
			v, err := s.number()
			if err != nil {
				return err
			}
			if v != math.Trunc(v) || v < -1 || v > 1<<20 {
				return fmt.Errorf("wire: class %v out of range", v)
			}
			d.Class = int(v)
		case "certainty":
			if d.Certainty, err = s.number(); err != nil {
				return err
			}
		case "unforeseen":
			if d.Unforeseen, err = s.boolean(); err != nil {
				return err
			}
		case "hit":
			if d.Hit, err = s.boolean(); err != nil {
				return err
			}
			r.Lookup = true
		case "type":
			name, err := s.key()
			if err != nil {
				return err
			}
			id, ok := typeIDForName(name)
			if !ok {
				return fmt.Errorf("wire: unknown allocation type %q", name)
			}
			d.Type = id
		case "count":
			v, err := s.number()
			if err != nil {
				return err
			}
			if v != math.Trunc(v) || v < 0 || v > 1<<20 {
				return fmt.Errorf("wire: count %v out of range", v)
			}
			d.Count = int(v)
		default:
			if err := s.skipValue(); err != nil {
				return err
			}
		}
		c, err := s.peek()
		if err != nil {
			return err
		}
		s.i++
		if c == '}' {
			return nil
		}
		if c != ',' {
			return fmt.Errorf("wire: expected ',' or '}' at offset %d", s.i-1)
		}
	}
}

// catalog is fetched once: cloud.Catalog() builds a fresh slice per
// call, which would put an allocation on the decode path.
var catalog = cloud.Catalog()

// typeIDForName resolves an instance-type name against the catalog
// without allocating (the name stays []byte).
func typeIDForName(name []byte) (cloud.TypeID, bool) {
	for _, t := range catalog {
		if string(name) == t.Name {
			return t.ID(), true
		}
	}
	return 0, false
}
