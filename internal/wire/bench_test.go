package wire

import (
	"math/rand"
	"testing"
)

// benchBatch builds the canonical 16×6 lookup batch (the serve
// benchmark's steady-state shape) plus its matching response.
func benchBatch() (*Request, *Response) {
	rng := rand.New(rand.NewSource(7))
	var req Request
	req.SetTemplate("cassandra")
	req.Bucket = 2
	row := make([]float64, 6)
	for i := 0; i < 16; i++ {
		for j := range row {
			row[j] = rng.NormFloat64() * 100
		}
		req.AppendRow(row)
	}
	resp := &Response{Version: 3, Lookup: true}
	for i := 0; i < 16; i++ {
		d := Decision{Class: i % 4, Certainty: 0.25 + rng.Float64()/2, Hit: i%3 != 0, Type: 2, Count: 4}
		if !d.Hit {
			d.Type, d.Count = 0, 0
		}
		resp.Results = append(resp.Results, d)
	}
	return &req, resp
}

// BenchmarkCodec compares JSON and binary encode/decode for one
// 16-signature batch in each direction. The binary codec's allocs/op
// must be 0 (also pinned hard by TestBinaryCodecZeroAlloc).
func BenchmarkCodec(b *testing.B) {
	req, resp := benchBatch()
	reqJSON := req.AppendJSON(nil)
	reqBin, err := req.AppendBinary(nil)
	if err != nil {
		b.Fatal(err)
	}
	respJSON := resp.AppendJSON(nil)
	respBin := resp.AppendBinary(nil)

	var scratchReq Request
	var scratchResp Response
	var buf []byte

	b.Run("json/encode-request", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf = req.AppendJSON(buf[:0])
		}
	})
	b.Run("binary/encode-request", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if buf, err = req.AppendBinary(buf[:0]); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("json/decode-request", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := scratchReq.DecodeJSON(reqJSON); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("binary/decode-request", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := scratchReq.DecodeBinary(reqBin); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("json/encode-response", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf = resp.AppendJSON(buf[:0])
		}
	})
	b.Run("binary/encode-response", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf = resp.AppendBinary(buf[:0])
		}
	})
	b.Run("json/decode-response", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := scratchResp.DecodeJSON(respJSON); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("binary/decode-response", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := scratchResp.DecodeBinary(respBin); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// TestBinaryCodecZeroAlloc pins the acceptance criterion: the binary
// wire path performs zero heap allocations at steady state on both
// sides of the exchange — encode+decode of requests (client sends,
// server receives) and encode+decode of responses (server sends,
// client receives).
func TestBinaryCodecZeroAlloc(t *testing.T) {
	req, resp := benchBatch()
	reqBin, err := req.AppendBinary(nil)
	if err != nil {
		t.Fatal(err)
	}
	respBin := resp.AppendBinary(nil)
	var scratchReq Request
	var scratchResp Response
	buf := make([]byte, 0, len(reqBin)+len(respBin))
	// Warm the scratch buffers, then measure.
	if err := scratchReq.DecodeBinary(reqBin); err != nil {
		t.Fatal(err)
	}
	if err := scratchResp.DecodeBinary(respBin); err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(200, func() {
		var err error
		if buf, err = req.AppendBinary(buf[:0]); err != nil {
			t.Fatal(err)
		}
		if err := scratchReq.DecodeBinary(reqBin); err != nil {
			t.Fatal(err)
		}
		buf = resp.AppendBinary(buf[:0])
		if err := scratchResp.DecodeBinary(respBin); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("binary codec allocates %.1f times per batch round trip, want 0", allocs)
	}

	// The JSON decode side is allocation-free too once warmed (its
	// encode side is as well; both feed the serve benchmark's JSON
	// axis).
	reqJSON := req.AppendJSON(nil)
	if err := scratchReq.DecodeJSON(reqJSON); err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(200, func() {
		if err := scratchReq.DecodeJSON(reqJSON); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("JSON request decode allocates %.1f times per batch, want 0", allocs)
	}
}
