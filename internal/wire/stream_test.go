package wire

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

// pipeBuf is an in-memory ReadWriter: reads drain from R, writes land
// in W.
type pipeBuf struct {
	R *bytes.Buffer
	W *bytes.Buffer
}

func (p *pipeBuf) Read(b []byte) (int, error)  { return p.R.Read(b) }
func (p *pipeBuf) Write(b []byte) (int, error) { return p.W.Write(b) }

// TestStreamHelloRoundTrip pins the handshake: the client names an
// encoding, the server reads it back, and both hellos are the same
// six bytes apart from the negotiated encoding.
func TestStreamHelloRoundTrip(t *testing.T) {
	for _, enc := range []Encoding{EncodingJSON, EncodingBinary} {
		var wireBytes bytes.Buffer
		cs := NewStream(&pipeBuf{R: &bytes.Buffer{}, W: &wireBytes})
		if err := cs.WriteClientHello(enc); err != nil {
			t.Fatal(err)
		}
		if wireBytes.Len() != helloLen {
			t.Fatalf("hello is %d bytes, want %d", wireBytes.Len(), helloLen)
		}
		ss := NewStream(&pipeBuf{R: &wireBytes, W: &bytes.Buffer{}})
		got, err := ss.ReadClientHello()
		if err != nil {
			t.Fatal(err)
		}
		if got != enc {
			t.Fatalf("negotiated %v, want %v", got, enc)
		}
	}
}

// TestStreamHelloRejections pins the failure modes: foreign magic
// (an HTTP request hitting the TCP port), an unknown version byte,
// and an unknown encoding byte all fail loudly with specific errors.
func TestStreamHelloRejections(t *testing.T) {
	good := func() []byte {
		var b bytes.Buffer
		s := NewStream(&pipeBuf{R: &bytes.Buffer{}, W: &b})
		if err := s.WriteClientHello(EncodingBinary); err != nil {
			t.Fatal(err)
		}
		return b.Bytes()
	}()
	cases := []struct {
		name string
		raw  []byte
		want string
	}{
		{"http-on-tcp-port", []byte("POST /v"), "magic"},
		{"bad-version", func() []byte { b := append([]byte(nil), good...); b[4] = 99; return b }(), "version"},
		{"bad-encoding", func() []byte { b := append([]byte(nil), good...); b[5] = 7; return b }(), "encoding"},
		{"truncated", good[:3], "hello"},
	}
	for _, tc := range cases {
		s := NewStream(&pipeBuf{R: bytes.NewBuffer(tc.raw), W: &bytes.Buffer{}})
		_, err := s.ReadClientHello()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want mention of %q", tc.name, err, tc.want)
		}
	}
}

// TestStreamEnvelopeRoundTrip pins envelope framing, including ids,
// flags, empty payloads, and back-to-back (pipelined) envelopes read
// in sequence.
func TestStreamEnvelopeRoundTrip(t *testing.T) {
	var wireBytes bytes.Buffer
	ws := NewStream(&pipeBuf{R: &bytes.Buffer{}, W: &wireBytes})
	payloads := [][]byte{
		[]byte("first"),
		{},
		bytes.Repeat([]byte{0xAB}, 4096),
	}
	flags := []byte{StreamFlagLookup, 0, StreamFlagError}
	for i, p := range payloads {
		if err := ws.WriteEnvelope(uint32(100+i), flags[i], p); err != nil {
			t.Fatal(err)
		}
	}
	rs := NewStream(&pipeBuf{R: &wireBytes, W: &bytes.Buffer{}})
	for i, p := range payloads {
		id, f, got, err := rs.ReadEnvelope(1 << 20)
		if err != nil {
			t.Fatalf("envelope %d: %v", i, err)
		}
		if id != uint32(100+i) || f != flags[i] || !bytes.Equal(got, p) {
			t.Fatalf("envelope %d: id=%d flags=%d len=%d", i, id, f, len(got))
		}
	}
	if _, _, _, err := rs.ReadEnvelope(1 << 20); err != io.EOF {
		t.Fatalf("after last envelope: %v, want io.EOF", err)
	}
}

// TestStreamEnvelopeCarriesWireFrames pins the tentpole property: the
// envelope payload is the exact binary request frame the codec
// produces, decodable unchanged on the far side.
func TestStreamEnvelopeCarriesWireFrames(t *testing.T) {
	var req Request
	req.SetTemplate("cassandra")
	req.Bucket = 3
	req.AppendRow([]float64{1.5, -2.25, 3})
	frame, err := req.AppendBinary(nil)
	if err != nil {
		t.Fatal(err)
	}
	var wireBytes bytes.Buffer
	ws := NewStream(&pipeBuf{R: &bytes.Buffer{}, W: &wireBytes})
	if err := ws.WriteEnvelope(7, StreamFlagLookup, frame); err != nil {
		t.Fatal(err)
	}
	rs := NewStream(&pipeBuf{R: &wireBytes, W: &bytes.Buffer{}})
	_, _, payload, err := rs.ReadEnvelope(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	var got Request
	if err := got.DecodeBinary(payload); err != nil {
		t.Fatal(err)
	}
	if string(got.Template) != "cassandra" || got.Bucket != 3 || got.Rows() != 1 || got.Row(0)[1] != -2.25 {
		t.Fatalf("decoded %+v", got)
	}
}

// TestStreamEnvelopeLimits pins the defensive bounds: an oversized
// payload is rejected before it is read, an impossible length fails,
// and a connection dying mid-frame reports truncation (distinct from
// the io.EOF of a clean close).
func TestStreamEnvelopeLimits(t *testing.T) {
	var wireBytes bytes.Buffer
	ws := NewStream(&pipeBuf{R: &bytes.Buffer{}, W: &wireBytes})
	if err := ws.WriteEnvelope(1, 0, make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	full := append([]byte(nil), wireBytes.Bytes()...)

	rs := NewStream(&pipeBuf{R: bytes.NewBuffer(full), W: &bytes.Buffer{}})
	if _, _, _, err := rs.ReadEnvelope(99); err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Fatalf("oversized payload: %v", err)
	}

	// elen shorter than its own header.
	bad := append([]byte(nil), full...)
	bad[0], bad[1], bad[2], bad[3] = 2, 0, 0, 0
	rs = NewStream(&pipeBuf{R: bytes.NewBuffer(bad), W: &bytes.Buffer{}})
	if _, _, _, err := rs.ReadEnvelope(1 << 20); err == nil || !strings.Contains(err.Error(), "shorter") {
		t.Fatalf("undersized elen: %v", err)
	}

	// Mid-frame death: header present, payload cut.
	rs = NewStream(&pipeBuf{R: bytes.NewBuffer(full[:20]), W: &bytes.Buffer{}})
	if _, _, _, err := rs.ReadEnvelope(1 << 20); !errors.Is(err, errStreamTruncated) {
		t.Fatalf("mid-frame cut: %v", err)
	}
}

// TestStreamZeroAllocSteadyState pins that warmed envelope traffic
// allocates nothing on either side.
func TestStreamZeroAllocSteadyState(t *testing.T) {
	payload := bytes.Repeat([]byte{0x55}, 1024)
	var wireBytes bytes.Buffer
	ws := NewStream(&pipeBuf{R: &bytes.Buffer{}, W: &wireBytes})
	rs := NewStream(&pipeBuf{R: &wireBytes, W: &bytes.Buffer{}})
	// Warm both scratch buffers (and bytes.Buffer's own backing).
	for i := 0; i < 4; i++ {
		if err := ws.WriteEnvelope(uint32(i), 0, payload); err != nil {
			t.Fatal(err)
		}
		if _, _, _, err := rs.ReadEnvelope(1 << 20); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := ws.WriteEnvelope(9, 0, payload); err != nil {
			t.Fatal(err)
		}
		if _, _, _, err := rs.ReadEnvelope(1 << 20); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("envelope round trip allocates %.1f times, want 0", allocs)
	}
}
