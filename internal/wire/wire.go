// Package wire is the decision-plane protocol: the single
// transport-agnostic codec stack shared by dejavud (internal/server),
// the client library (internal/client), and the decision proxy
// (internal/proxy). A decision request carries a batch of signature
// vectors plus an interference bucket and a template id; a decision
// response carries one classify/lookup decision per signature, tagged
// with the repository version that served the batch.
//
// Two encodings are negotiated via Content-Type:
//
//   - application/json — the compatibility path: the original
//     hand-rolled, allocation-free JSON vocabulary ({"template":...,
//     "bucket":..., "signatures":[[...]]}) kept byte-compatible with
//     pre-wire dejavud deployments.
//   - application/x-dejavu-batch — the binary columnar batch
//     encoding: a length-prefixed frame holding the signature batch
//     as one dense little-endian float64 block (values cross the
//     wire bit-exactly, no parse/format tax) with varint ids for
//     template length, bucket, row/column counts, classes, and
//     allocation types.
//
// Both encodings decode to identical in-memory structures; for every
// payload the codecs themselves produce, the decoded values are
// bit-equal across encodings (TestWireJSONBinaryEquivalence). Encoding
// and decoding are allocation-free at steady state on both the client
// and the server side of the exchange: all codec state lives in
// caller-owned scratch that warms up to the workload's batch size
// (BenchmarkCodec pins 0 allocs/op for the binary codec).
//
// Frame layouts (all multi-byte integers little-endian, "uv" =
// unsigned LEB128 varint, "zv" = zigzag varint):
//
//	request  := len:u32 magic:0xDC ver:0x01
//	            uv(len(template)) template-bytes
//	            uv(bucket) uv(rows) uv(width)
//	            rows×width float64 values (row-major dense block)
//	response := len:u32 magic:0xDD ver:0x01 flags:u8   (bit0 = lookup)
//	            uv(repoVersion) uv(rows)
//	            rows×u8 row-flags                      (bit0 unforeseen, bit1 hit)
//	            rows×zv class                          (-1 = novelty rejection)
//	            rows×float64 certainty
//	            per hit row, in row order: uv(typeID) uv(count)
//
// The u32 length prefix counts every byte after itself. HTTP framing
// (Content-Length) makes it redundant there, but it keeps the frames
// self-delimiting for raw-stream transports and lets decoders reject
// truncated bodies before touching the payload.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"repro/internal/cloud"
)

// Content types negotiated on decision endpoints.
const (
	// ContentTypeJSON is the compatibility encoding.
	ContentTypeJSON = "application/json"
	// ContentTypeBinary is the binary columnar batch encoding.
	ContentTypeBinary = "application/x-dejavu-batch"
)

// Protocol framing constants.
const (
	reqMagic  = 0xDC
	respMagic = 0xDD
	// Version is the binary protocol version emitted and accepted by
	// this codec. Decoders reject frames with any other version so a
	// future layout change fails loudly instead of misparsing.
	Version = 1
)

// maxRows bounds a decoded batch (defense against hostile frames; the
// server's body-size limit bounds honest ones).
const maxRows = 1 << 20

// maxValues bounds rows×width.
const maxValues = 1 << 24

// Encoding selects one of the two negotiated codecs.
type Encoding uint8

const (
	// EncodingJSON is the compatibility path.
	EncodingJSON Encoding = iota
	// EncodingBinary is the columnar batch encoding.
	EncodingBinary
)

// ContentType returns the Content-Type header value for the encoding.
func (e Encoding) ContentType() string {
	if e == EncodingBinary {
		return ContentTypeBinary
	}
	return ContentTypeJSON
}

// EncodingForContentType maps a Content-Type header to an Encoding:
// exactly ContentTypeBinary selects the binary codec, anything else
// (including absent or nonstandard types — the pre-wire server never
// inspected the header, so historical clients send all sorts) is the
// JSON compatibility path. A binary frame mislabeled as JSON fails
// loudly at the first scan, never silently misparses. Parameters
// after ';' are ignored.
func EncodingForContentType(ct string) Encoding {
	for i := 0; i < len(ct); i++ {
		if ct[i] == ';' {
			ct = ct[:i]
			break
		}
	}
	if ct == ContentTypeBinary {
		return EncodingBinary
	}
	return EncodingJSON
}

// Request is the decoded form of a decision request, backed entirely
// by reusable scratch storage: row i of the batch is
// vals[ends[i-1]:ends[i]] (ends[-1] meaning 0). The JSON encoding
// permits ragged rows (the server rejects them against the
// repository width); the binary encoding is structurally rectangular.
type Request struct {
	// Template routes the batch to one of the server's templates;
	// empty means the server's sole (or "default") template. The
	// slice aliases either the request body or the tmpl scratch —
	// valid until the next Reset.
	Template []byte
	// Bucket is the interference bucket for lookups.
	Bucket int
	// Single records that a JSON request used the "signature" key (a
	// batch of one). It exists for the empty-request validation and
	// for tests; the reply envelope is always batched regardless.
	Single bool

	vals []float64
	ends []int
	tmpl []byte // scratch backing Template for client-built requests
}

// Rows returns the batch size.
func (r *Request) Rows() int { return len(r.ends) }

// Row returns the i-th signature of the batch.
func (r *Request) Row(i int) []float64 {
	start := 0
	if i > 0 {
		start = r.ends[i-1]
	}
	return r.vals[start:r.ends[i]]
}

// Reset clears the request for reuse, keeping capacity.
func (r *Request) Reset() {
	r.Template = nil
	r.Bucket = 0
	r.Single = false
	r.vals = r.vals[:0]
	r.ends = r.ends[:0]
}

// SetTemplate records the routing template without allocating at
// steady state (the name is copied into reusable scratch).
func (r *Request) SetTemplate(name string) {
	r.tmpl = append(r.tmpl[:0], name...)
	r.Template = r.tmpl
}

// AppendRow adds one signature to the batch.
func (r *Request) AppendRow(vals []float64) {
	r.vals = append(r.vals, vals...)
	r.ends = append(r.ends, len(r.vals))
}

// Rectangular reports whether every row has the same width, returning
// that width. The binary encoding requires it.
func (r *Request) Rectangular() (int, bool) {
	if len(r.ends) == 0 {
		return 0, true
	}
	w := r.ends[0]
	for i := 1; i < len(r.ends); i++ {
		if r.ends[i]-r.ends[i-1] != w {
			return 0, false
		}
	}
	return w, true
}

// AppendBinary encodes the request as one binary frame appended to
// dst. The batch must be rectangular.
func (r *Request) AppendBinary(dst []byte) ([]byte, error) {
	width, ok := r.Rectangular()
	if !ok {
		return dst, errors.New("wire: binary encoding requires a rectangular batch")
	}
	lenAt := len(dst)
	dst = append(dst, 0, 0, 0, 0) // length prefix backpatched below
	dst = append(dst, reqMagic, Version)
	dst = appendUvarint(dst, uint64(len(r.Template)))
	dst = append(dst, r.Template...)
	dst = appendUvarint(dst, uint64(r.Bucket))
	dst = appendUvarint(dst, uint64(len(r.ends)))
	dst = appendUvarint(dst, uint64(width))
	for _, v := range r.vals {
		dst = appendF64(dst, v)
	}
	binary.LittleEndian.PutUint32(dst[lenAt:], uint32(len(dst)-lenAt-4))
	return dst, nil
}

// DecodeBinary fills the request from one binary frame, reusing the
// request's buffers. The Template slice aliases body.
func (r *Request) DecodeBinary(body []byte) error {
	r.Reset()
	d := bdecoder{b: body}
	if err := d.frameHeader(reqMagic); err != nil {
		return err
	}
	tlen, err := d.uvarint()
	if err != nil {
		return err
	}
	if tlen > maxTemplateLen {
		return fmt.Errorf("wire: template id of %d bytes exceeds limit %d", tlen, maxTemplateLen)
	}
	if r.Template, err = d.bytes(int(tlen)); err != nil {
		return err
	}
	bucket, err := d.uvarint()
	if err != nil {
		return err
	}
	if bucket > 1<<20 {
		return fmt.Errorf("wire: bucket %d is not a small non-negative integer", bucket)
	}
	r.Bucket = int(bucket)
	rows, err := d.uvarint()
	if err != nil {
		return err
	}
	width, err := d.uvarint()
	if err != nil {
		return err
	}
	if rows == 0 {
		return errors.New("wire: request contains no signatures")
	}
	// Bound each factor before multiplying: a hostile frame with
	// rows×width wrapping uint64 must not sneak past the product
	// check and panic the row indexer.
	if rows > maxRows || width == 0 || width > maxValues || rows*width > maxValues {
		return fmt.Errorf("wire: batch of %d×%d values exceeds limits", rows, width)
	}
	n := int(rows * width)
	if cap(r.vals) < n {
		r.vals = make([]float64, 0, n)
	}
	r.vals = r.vals[:n]
	for i := range r.vals {
		v, err := d.f64()
		if err != nil {
			return err
		}
		r.vals[i] = v
	}
	for i := 1; i <= int(rows); i++ {
		r.ends = append(r.ends, i*int(width))
	}
	return d.done()
}

// maxTemplateLen bounds a template id on the wire.
const maxTemplateLen = 256

// Decode dispatches on the encoding.
func (r *Request) Decode(enc Encoding, body []byte) error {
	if enc == EncodingBinary {
		return r.DecodeBinary(body)
	}
	return r.DecodeJSON(body)
}

// Append encodes the request in the given encoding.
func (r *Request) Append(enc Encoding, dst []byte) ([]byte, error) {
	if enc == EncodingBinary {
		return r.AppendBinary(dst)
	}
	return r.AppendJSON(dst), nil
}

// Decision is one classify/lookup result row.
type Decision struct {
	// Class is the matched workload class (-1 on novelty rejection).
	Class int
	// Certainty is the classifier confidence in [0, 1].
	Certainty float64
	// Unforeseen reports that the signature looks unlike every
	// learned class.
	Unforeseen bool
	// Hit reports a usable cached allocation (lookups only).
	Hit bool
	// Type and Count are the cached allocation; valid only when Hit.
	Type  cloud.TypeID
	Count int
}

// Response is the decoded form of a decision response. Results reuses
// capacity across Resets; Decision holds no pointers, so a warmed
// response decodes without allocating.
type Response struct {
	// Version is the repository snapshot version that served the
	// batch.
	Version uint64
	// Lookup selects the response vocabulary: lookup rows carry
	// hit/type/count, classify rows do not.
	Lookup bool
	// Results holds one decision per request row.
	Results []Decision
}

// Reset clears the response for reuse, keeping capacity.
func (r *Response) Reset() {
	r.Version = 0
	r.Lookup = false
	r.Results = r.Results[:0]
}

// AppendBinary encodes the response as one binary frame appended to
// dst.
func (r *Response) AppendBinary(dst []byte) []byte {
	lenAt := len(dst)
	dst = append(dst, 0, 0, 0, 0)
	var flags byte
	if r.Lookup {
		flags |= 1
	}
	dst = append(dst, respMagic, Version, flags)
	dst = appendUvarint(dst, r.Version)
	dst = appendUvarint(dst, uint64(len(r.Results)))
	for i := range r.Results {
		var f byte
		if r.Results[i].Unforeseen {
			f |= 1
		}
		if r.Results[i].Hit {
			f |= 2
		}
		dst = append(dst, f)
	}
	for i := range r.Results {
		dst = appendZigzag(dst, int64(r.Results[i].Class))
	}
	for i := range r.Results {
		dst = appendF64(dst, r.Results[i].Certainty)
	}
	for i := range r.Results {
		if r.Results[i].Hit {
			dst = appendUvarint(dst, uint64(r.Results[i].Type))
			dst = appendUvarint(dst, uint64(r.Results[i].Count))
		}
	}
	binary.LittleEndian.PutUint32(dst[lenAt:], uint32(len(dst)-lenAt-4))
	return dst
}

// DecodeBinary fills the response from one binary frame, reusing the
// Results buffer.
func (r *Response) DecodeBinary(body []byte) error {
	r.Reset()
	d := bdecoder{b: body}
	if err := d.frameHeader(respMagic); err != nil {
		return err
	}
	flags, err := d.u8()
	if err != nil {
		return err
	}
	r.Lookup = flags&1 != 0
	if r.Version, err = d.uvarint(); err != nil {
		return err
	}
	rows, err := d.uvarint()
	if err != nil {
		return err
	}
	if rows > maxRows {
		return fmt.Errorf("wire: response of %d rows exceeds limit", rows)
	}
	n := int(rows)
	if cap(r.Results) < n {
		r.Results = make([]Decision, 0, n)
	}
	r.Results = r.Results[:n]
	for i := range r.Results {
		f, err := d.u8()
		if err != nil {
			return err
		}
		r.Results[i] = Decision{Unforeseen: f&1 != 0, Hit: f&2 != 0}
	}
	for i := range r.Results {
		c, err := d.zigzag()
		if err != nil {
			return err
		}
		r.Results[i].Class = int(c)
	}
	for i := range r.Results {
		v, err := d.f64()
		if err != nil {
			return err
		}
		r.Results[i].Certainty = v
	}
	for i := range r.Results {
		if !r.Results[i].Hit {
			continue
		}
		typ, err := d.uvarint()
		if err != nil {
			return err
		}
		if typ > uint64(len(catalog)) {
			return fmt.Errorf("wire: unknown allocation type id %d", typ)
		}
		count, err := d.uvarint()
		if err != nil {
			return err
		}
		if count > 1<<20 {
			return fmt.Errorf("wire: allocation count %d out of range", count)
		}
		r.Results[i].Type = cloud.TypeID(typ)
		r.Results[i].Count = int(count)
	}
	return d.done()
}

// Decode dispatches on the encoding.
func (r *Response) Decode(enc Encoding, body []byte) error {
	if enc == EncodingBinary {
		return r.DecodeBinary(body)
	}
	return r.DecodeJSON(body)
}

// Append encodes the response in the given encoding.
func (r *Response) Append(enc Encoding, dst []byte) []byte {
	if enc == EncodingBinary {
		return r.AppendBinary(dst)
	}
	return r.AppendJSON(dst)
}

// --- binary primitives ---

func appendF64(dst []byte, v float64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
	return append(dst, b[:]...)
}

func appendUvarint(dst []byte, v uint64) []byte {
	for v >= 0x80 {
		dst = append(dst, byte(v)|0x80)
		v >>= 7
	}
	return append(dst, byte(v))
}

func appendZigzag(dst []byte, v int64) []byte {
	return appendUvarint(dst, uint64(v<<1)^uint64(v>>63))
}

// bdecoder walks one binary frame.
type bdecoder struct {
	b []byte
	i int
}

// frameHeader validates the length prefix, magic, and version.
func (d *bdecoder) frameHeader(magic byte) error {
	if len(d.b) < 6 {
		return errTruncated
	}
	n := binary.LittleEndian.Uint32(d.b)
	if int(n) != len(d.b)-4 {
		return fmt.Errorf("wire: frame length %d does not match body length %d", n, len(d.b)-4)
	}
	if d.b[4] != magic {
		return fmt.Errorf("wire: bad frame magic 0x%02X", d.b[4])
	}
	if d.b[5] != Version {
		return fmt.Errorf("wire: unsupported protocol version %d", d.b[5])
	}
	d.i = 6
	return nil
}

func (d *bdecoder) u8() (byte, error) {
	if d.i >= len(d.b) {
		return 0, errTruncated
	}
	v := d.b[d.i]
	d.i++
	return v, nil
}

func (d *bdecoder) uvarint() (uint64, error) {
	var v uint64
	for shift := 0; shift < 64; shift += 7 {
		if d.i >= len(d.b) {
			return 0, errTruncated
		}
		c := d.b[d.i]
		d.i++
		v |= uint64(c&0x7F) << shift
		if c < 0x80 {
			return v, nil
		}
	}
	return 0, errors.New("wire: varint overflow")
}

func (d *bdecoder) zigzag() (int64, error) {
	v, err := d.uvarint()
	if err != nil {
		return 0, err
	}
	return int64(v>>1) ^ -int64(v&1), nil
}

func (d *bdecoder) f64() (float64, error) {
	if d.i+8 > len(d.b) {
		return 0, errTruncated
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.b[d.i:]))
	d.i += 8
	return v, nil
}

func (d *bdecoder) bytes(n int) ([]byte, error) {
	if d.i+n > len(d.b) {
		return nil, errTruncated
	}
	v := d.b[d.i : d.i+n]
	d.i += n
	return v, nil
}

// done verifies the frame was fully consumed — trailing garbage means
// a framing bug on the peer.
func (d *bdecoder) done() error {
	if d.i != len(d.b) {
		return fmt.Errorf("wire: %d trailing bytes after frame", len(d.b)-d.i)
	}
	return nil
}
