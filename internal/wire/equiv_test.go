package wire

import (
	"math"
	"math/rand"
	"testing"
)

// randomRequest builds a random rectangular batch whose values span
// the full float64 range the decision plane can carry (profiler-
// normalized rates plus adversarial magnitudes), drawn as raw bit
// patterns away from the subnormal/overflow edges.
func randomRequest(rng *rand.Rand) *Request {
	var req Request
	if rng.Intn(2) == 0 {
		req.SetTemplate([]string{"cassandra", "specweb", "rubis", "t"}[rng.Intn(4)])
	}
	req.Bucket = rng.Intn(19)
	rows := 1 + rng.Intn(24)
	width := 1 + rng.Intn(12)
	row := make([]float64, width)
	for i := 0; i < rows; i++ {
		for j := range row {
			row[j] = randomFloat(rng)
		}
		req.AppendRow(row)
	}
	return &req
}

func randomFloat(rng *rand.Rand) float64 {
	switch rng.Intn(4) {
	case 0: // realistic profiler-normalized rate
		return (rng.Float64() - 0.3) * math.Pow10(rng.Intn(13)-6)
	case 1: // small integer
		return float64(rng.Intn(2000) - 500)
	default: // arbitrary bits, clamped away from the extreme edges
		for {
			v := math.Float64frombits(rng.Uint64())
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			if m := math.Abs(v); v != 0 && (m < 1e-290 || m > 1e290) {
				continue
			}
			return v
		}
	}
}

// TestWireJSONBinaryEquivalence is the property test behind the
// protocol's compatibility claim: any batch encoded by the JSON codec
// and by the binary codec decodes to bit-equal values, so a fleet can
// mix transports (or roll between them) without a single decision
// changing.
func TestWireJSONBinaryEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	var jsonReq, binReq Request
	var jsonBuf, binBuf []byte
	for iter := 0; iter < 300; iter++ {
		req := randomRequest(rng)
		jsonBuf = req.AppendJSON(jsonBuf[:0])
		var err error
		if binBuf, err = req.AppendBinary(binBuf[:0]); err != nil {
			t.Fatal(err)
		}
		if err := jsonReq.DecodeJSON(jsonBuf); err != nil {
			t.Fatalf("iter %d: json decode: %v", iter, err)
		}
		if err := binReq.DecodeBinary(binBuf); err != nil {
			t.Fatalf("iter %d: binary decode: %v", iter, err)
		}
		if string(jsonReq.Template) != string(binReq.Template) ||
			jsonReq.Bucket != binReq.Bucket || jsonReq.Rows() != binReq.Rows() {
			t.Fatalf("iter %d: header mismatch: %+v vs %+v", iter, jsonReq, binReq)
		}
		for i := 0; i < jsonReq.Rows(); i++ {
			jr, br := jsonReq.Row(i), binReq.Row(i)
			for j := range jr {
				if math.Float64bits(jr[j]) != math.Float64bits(br[j]) {
					t.Fatalf("iter %d row %d col %d: json %v (%x) != binary %v (%x) for original %v",
						iter, i, j, jr[j], math.Float64bits(jr[j]), br[j], math.Float64bits(br[j]),
						req.Row(i)[j])
				}
			}
		}
	}

	// Responses: same property, both vocabularies.
	var jsonResp, binResp Response
	for iter := 0; iter < 300; iter++ {
		resp := Response{Version: rng.Uint64() % (1 << 40), Lookup: rng.Intn(2) == 0}
		for i := 0; i < 1+rng.Intn(24); i++ {
			d := Decision{Class: rng.Intn(8) - 1, Certainty: math.Abs(randomFloat(rng))}
			if d.Class == -1 {
				d.Unforeseen = true
			}
			if resp.Lookup && d.Class >= 0 && rng.Intn(2) == 0 {
				d.Hit = true
				d.Type = catalog[rng.Intn(len(catalog))].ID()
				d.Count = 1 + rng.Intn(40)
			}
			resp.Results = append(resp.Results, d)
		}
		jsonBuf = resp.AppendJSON(jsonBuf[:0])
		binBuf = resp.AppendBinary(binBuf[:0])
		if err := jsonResp.DecodeJSON(jsonBuf); err != nil {
			t.Fatalf("iter %d: json decode: %v", iter, err)
		}
		if err := binResp.DecodeBinary(binBuf); err != nil {
			t.Fatalf("iter %d: binary decode: %v", iter, err)
		}
		if jsonResp.Version != binResp.Version || len(jsonResp.Results) != len(binResp.Results) {
			t.Fatalf("iter %d: envelope mismatch", iter)
		}
		for i := range resp.Results {
			j, b := jsonResp.Results[i], binResp.Results[i]
			if math.Float64bits(j.Certainty) != math.Float64bits(b.Certainty) {
				t.Fatalf("iter %d row %d: certainty %x != %x", iter, i,
					math.Float64bits(j.Certainty), math.Float64bits(b.Certainty))
			}
			j.Certainty, b.Certainty = 0, 0
			if j != b {
				t.Fatalf("iter %d row %d: %+v != %+v", iter, i, j, b)
			}
		}
	}
}
