package wire

import (
	"math"
	"math/rand"
	"strconv"
	"testing"
)

func parseOK(t *testing.T, body string) *Request {
	t.Helper()
	var req Request
	if err := req.DecodeJSON([]byte(body)); err != nil {
		t.Fatalf("parse %q: %v", body, err)
	}
	return &req
}

func TestParseSingle(t *testing.T) {
	req := parseOK(t, `{"signature":[1.5, -2, 3e2]}`)
	if !req.Single || req.Rows() != 1 || req.Bucket != 0 {
		t.Fatalf("parsed: %+v", req)
	}
	row := req.Row(0)
	if len(row) != 3 || row[0] != 1.5 || row[1] != -2 || row[2] != 300 {
		t.Fatalf("row: %v", row)
	}
}

func TestParseBatchWithBucketAndTemplate(t *testing.T) {
	req := parseOK(t, `{"template":"cassandra","bucket": 3, "signatures": [[1,2],[3,4],[5,6]]}`)
	if req.Single || req.Rows() != 3 || req.Bucket != 3 {
		t.Fatalf("parsed: %+v", req)
	}
	if string(req.Template) != "cassandra" {
		t.Fatalf("template: %q", req.Template)
	}
	if r := req.Row(1); r[0] != 3 || r[1] != 4 {
		t.Fatalf("row 1: %v", r)
	}
	if r := req.Row(2); r[0] != 5 || r[1] != 6 {
		t.Fatalf("row 2: %v", r)
	}
}

func TestParseUnknownKeysSkipped(t *testing.T) {
	req := parseOK(t, `{"client":"vm-007","nested":{"a":[1,{"b":"}"}]},"flag":true,"none":null,"signature":[7],"extra":-1.5e-2}`)
	if req.Rows() != 1 || req.Row(0)[0] != 7 {
		t.Fatalf("parsed: %+v", req)
	}
}

func TestParseReuseResets(t *testing.T) {
	var req Request
	if err := req.DecodeJSON([]byte(`{"template":"x","signatures":[[1,2],[3,4]],"bucket":2}`)); err != nil {
		t.Fatal(err)
	}
	if err := req.DecodeJSON([]byte(`{"signature":[9]}`)); err != nil {
		t.Fatal(err)
	}
	if req.Rows() != 1 || req.Row(0)[0] != 9 || req.Bucket != 0 || len(req.Template) != 0 {
		t.Fatalf("stale state after reuse: %+v", req)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`[]`,
		`{}`,
		`{"signature":}`,
		`{"signature":[1,]}`,
		`{"signature":[1`,
		`{"signature":[1],"signatures":[[2]]}`,
		`{"signatures":[],"signature":[1]}`, // empty batch must not defeat the exclusivity guard
		`{"signature":[1],"signature":[2]}`,
		`{"signatures":[]}`,
		`{"signatures":[[1],[2]`,
		`{"bucket":-1,"signature":[1]}`,
		`{"bucket":1.5,"signature":[1]}`,
		`{"bucket":"zero","signature":[1]}`,
		`{"template":42,"signature":[1]}`,
		`{"signature":[1e]}`,
		`{"signature":[--1]}`,
		`{"signature" [1]}`,
		`{"x":truu,"signature":[1]}`, // malformed literal must not realign on the comma
		`{"x":t,"signature":[1]}`,
		`{"x":nul,"signature":[1]}`,
	}
	var req Request
	for _, b := range bad {
		if err := req.DecodeJSON([]byte(b)); err == nil {
			t.Errorf("parse %q: expected error", b)
		}
	}
}

// TestNumberRoundTrip pins the parser's accuracy contract (see
// number.go): exact parses for every shortest-form encoding (what the
// wire codecs emit) across the non-extreme float64 range, and full
// determinism (equal bytes, equal values).
func TestNumberRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	// 15-significant-digit texts in the rate range: mantissa < 2^53
	// and |decimal exponent| ≤ 22, so one rounding — exact on the
	// fast path alone.
	for i := 0; i < 5000; i++ {
		exp := rng.Intn(13) - 6 // 1e-6 .. 1e6: profiler-normalized rates
		v := (0.1 + 0.9*rng.Float64()) * math.Pow10(exp)
		if rng.Intn(2) == 0 {
			v = -v
		}
		text := strconv.AppendFloat(nil, v, 'g', 15, 64)
		want, err := strconv.ParseFloat(string(text), 64)
		if err != nil {
			t.Fatal(err)
		}
		s := scanner{b: text}
		got, err := s.number()
		if err != nil {
			t.Fatalf("parse %s: %v", text, err)
		}
		if got != want {
			t.Fatalf("15-digit parse %s: got %v, want %v", text, got, want)
		}
	}
	// Shortest-form encodings (what AppendFloat 'g' -1 emits): a
	// 16-17 digit mantissa exceeds 2^53; the shortest-representation
	// refinement must recover the exact value.
	for i := 0; i < 5000; i++ {
		exp := rng.Intn(13) - 6
		want := rng.Float64() * math.Pow10(exp)
		text := strconv.AppendFloat(nil, want, 'g', -1, 64)
		s := scanner{b: text}
		got, err := s.number()
		if err != nil {
			t.Fatalf("parse %s: %v", text, err)
		}
		if got != want {
			t.Fatalf("shortest-form parse %s: got %v, want %v (%d ulp apart)",
				text, got, want, ulpDiff(got, want))
		}
		s2 := scanner{b: text}
		again, _ := s2.number()
		if again != got {
			t.Fatalf("parse %s is not deterministic", text)
		}
	}
	// Arbitrary float64 bit patterns away from the subnormal/overflow
	// edges: still exact.
	for i := 0; i < 5000; i++ {
		want := math.Float64frombits(rng.Uint64())
		if math.IsNaN(want) || math.IsInf(want, 0) {
			continue
		}
		if m := math.Abs(want); m < 1e-290 || m > 1e290 {
			// Near-subnormal and near-overflow magnitudes degrade
			// gracefully but the fast-path estimate can land outside
			// the refinement window; signature rates live many orders
			// of magnitude away from either edge.
			continue
		}
		text := strconv.AppendFloat(nil, want, 'g', -1, 64)
		s := scanner{b: text}
		got, err := s.number()
		if err != nil {
			t.Fatalf("parse %s: %v", text, err)
		}
		if got != want {
			t.Fatalf("parse %s: got %v, want %v (%d ulp apart)", text, got, want, ulpDiff(got, want))
		}
	}
}

func ulpDiff(a, b float64) uint64 {
	ua, ub := math.Float64bits(math.Abs(a)), math.Float64bits(math.Abs(b))
	if (a < 0) != (b < 0) && a != b {
		return math.MaxUint64
	}
	if ua > ub {
		return ua - ub
	}
	return ub - ua
}

func TestParseIntegersAndExponents(t *testing.T) {
	cases := map[string]float64{
		`{"signature":[0]}`:                        0,
		`{"signature":[-0.5]}`:                     -0.5,
		`{"signature":[1E+3]}`:                     1000,
		`{"signature":[2.5e-1]}`:                   0.25,
		`{"signature":[123456789012345678901234]}`: 123456789012345678901234,
	}
	for body, want := range cases {
		req := parseOK(t, body)
		got := req.Row(0)[0]
		if got != want && math.Abs(got-want) > math.Abs(want)*1e-14 {
			t.Errorf("%s: got %v, want %v", body, got, want)
		}
	}
}

func TestResponseJSONRoundTrip(t *testing.T) {
	resp := Response{Version: 7, Lookup: true, Results: []Decision{
		{Class: 2, Certainty: 0.953, Unforeseen: false, Hit: true, Type: 2, Count: 5},
		{Class: -1, Certainty: 0.31, Unforeseen: true},
		{Class: 0, Certainty: 0.88},
	}}
	body := resp.AppendJSON(nil)
	var back Response
	if err := back.DecodeJSON(body); err != nil {
		t.Fatalf("decode %s: %v", body, err)
	}
	if back.Version != resp.Version || !back.Lookup || len(back.Results) != 3 {
		t.Fatalf("round trip: %+v", back)
	}
	for i := range resp.Results {
		if back.Results[i] != resp.Results[i] {
			t.Errorf("result %d: got %+v, want %+v", i, back.Results[i], resp.Results[i])
		}
	}

	// Classify responses carry no hit vocabulary and decode with
	// Lookup=false.
	resp.Lookup = false
	var clf Response
	if err := clf.DecodeJSON(resp.AppendJSON(nil)); err != nil {
		t.Fatal(err)
	}
	if clf.Lookup {
		t.Error("classify envelope decoded as lookup")
	}
	if clf.Results[0].Hit || clf.Results[0].Count != 0 {
		t.Errorf("classify row leaked lookup fields: %+v", clf.Results[0])
	}
}
