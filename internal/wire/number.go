package wire

import (
	"errors"
	"fmt"
	"math"
	"strconv"
)

// scanner is a minimal JSON reader over one message body.
type scanner struct {
	b []byte
	i int
}

var errTruncated = errors.New("wire: truncated body")

func (s *scanner) ws() {
	for s.i < len(s.b) {
		switch s.b[s.i] {
		case ' ', '\t', '\r', '\n':
			s.i++
		default:
			return
		}
	}
}

func (s *scanner) expect(c byte) error {
	s.ws()
	if s.i >= len(s.b) {
		return errTruncated
	}
	if s.b[s.i] != c {
		return fmt.Errorf("wire: expected %q at offset %d, found %q", c, s.i, s.b[s.i])
	}
	s.i++
	return nil
}

// peek returns the next non-space byte without consuming it.
func (s *scanner) peek() (byte, error) {
	s.ws()
	if s.i >= len(s.b) {
		return 0, errTruncated
	}
	return s.b[s.i], nil
}

// key reads a JSON string, returning the raw bytes between the quotes.
// Keys in the decision vocabulary carry no escapes; escaped sequences
// are kept verbatim (they simply won't match any known key).
func (s *scanner) key() ([]byte, error) {
	if err := s.expect('"'); err != nil {
		return nil, err
	}
	start := s.i
	for s.i < len(s.b) {
		switch s.b[s.i] {
		case '\\':
			s.i += 2
		case '"':
			k := s.b[start:s.i]
			s.i++
			return k, nil
		default:
			s.i++
		}
	}
	return nil, errTruncated
}

// number parses a JSON number exactly for every shortest-form float64
// encoding (what strconv.AppendFloat 'g' -1 emits — the only form the
// wire codecs themselves produce) without allocating. A fast
// mantissa/exponent scan gives the correctly rounded result outright
// for values with up to 15 significant digits and decimal exponents
// within ±22; longer encodings land within a few ulps and are then
// refined by matching candidate floats' shortest representation
// against the input digits (see refineShortest). Non-canonical long
// inputs (e.g. 25 printed digits) degrade gracefully to the fast
// path's few-ulp accuracy; determinism always holds: equal bytes
// parse to equal values.
func (s *scanner) number() (float64, error) {
	s.ws()
	neg := false
	if s.i < len(s.b) && s.b[s.i] == '-' {
		neg = true
		s.i++
	}
	tokStart := s.i
	var mant uint64
	exp := 0
	seen := false
	digits := 0 // significant digits consumed into mant
	for s.i < len(s.b) {
		c := s.b[s.i]
		if c < '0' || c > '9' {
			break
		}
		seen = true
		if mant <= (math.MaxUint64-9)/10 {
			mant = mant*10 + uint64(c-'0')
			if mant > 0 {
				digits++
			}
		} else {
			exp++
			digits++
		}
		s.i++
	}
	if s.i < len(s.b) && s.b[s.i] == '.' {
		s.i++
		for s.i < len(s.b) {
			c := s.b[s.i]
			if c < '0' || c > '9' {
				break
			}
			seen = true
			if mant <= (math.MaxUint64-9)/10 {
				mant = mant*10 + uint64(c-'0')
				if mant > 0 {
					digits++
				}
				exp--
			}
			s.i++
		}
	}
	if !seen {
		return 0, fmt.Errorf("wire: malformed number at offset %d", s.i)
	}
	if s.i < len(s.b) && (s.b[s.i] == 'e' || s.b[s.i] == 'E') {
		s.i++
		eneg := false
		switch {
		case s.i < len(s.b) && s.b[s.i] == '-':
			eneg = true
			s.i++
		case s.i < len(s.b) && s.b[s.i] == '+':
			s.i++
		}
		e := 0
		eseen := false
		for s.i < len(s.b) {
			c := s.b[s.i]
			if c < '0' || c > '9' {
				break
			}
			eseen = true
			if e < 1<<20 {
				e = e*10 + int(c-'0')
			}
			s.i++
		}
		if !eseen {
			return 0, fmt.Errorf("wire: malformed exponent at offset %d", s.i)
		}
		if eneg {
			e = -e
		}
		exp += e
	}
	f := float64(mant)
	switch {
	case exp > 0:
		for exp > 308 { // overflow folds to +Inf
			f *= 1e308
			exp -= 308
		}
		f *= pow10(exp)
	case exp < 0:
		e := -exp
		for e > 308 { // underflow degrades through subnormals to 0
			f /= 1e308
			e -= 308
		}
		f /= pow10(e)
	}
	// The fast path is already exact when the mantissa fits 15 digits
	// and the residual decimal exponent is a power of ten that
	// multiplies/divides exactly (|exp| ≤ 22): one rounding total.
	if digits > 15 || exp > 22 || exp < -22 {
		f = refineShortest(f, s.b[tokStart:s.i])
	}
	if neg {
		f = -f
	}
	return f, nil
}

// pow10 returns 10^e for 0 <= e <= 308 without allocating.
func pow10(e int) float64 {
	f := 1.0
	p := 10.0
	for e > 0 {
		if e&1 == 1 {
			f *= p
		}
		p *= p
		e >>= 1
	}
	return f
}

// refineUlpWindow bounds the neighbour search of refineShortest. The
// fast scan is within 1 ulp for moderate exponents and within ~8 ulps
// across the non-extreme float64 range (pinned by TestNumberRoundTrip),
// so ±8 covers every refinable input.
const refineUlpWindow = 8

// refineShortest resolves the last-ulp ambiguity of the fast scan: the
// correct value of a shortest-form encoding is the unique float64
// whose own shortest representation reproduces the input digits.
// Starting from the estimate f (magnitude only, no sign), it walks
// neighbouring floats in ulp order and returns the first whose
// AppendFloat('e', -1) output matches the input token's normalized
// significand and decimal exponent. Inputs that are not a shortest
// encoding match no candidate and keep the estimate. Allocation-free:
// all scratch lives on the stack.
func refineShortest(f float64, tok []byte) float64 {
	if math.IsInf(f, 0) || f == 0 {
		return f
	}
	var wantDigits, candDigits [24]byte
	want, wantExp, ok := decomposeDecimal(tok, wantDigits[:0])
	if !ok {
		return f
	}
	var fmtBuf [32]byte
	up, down := f, f
	for step := 0; step <= refineUlpWindow; step++ {
		for _, cand := range [2]float64{up, down} {
			out := strconv.AppendFloat(fmtBuf[:0], cand, 'e', -1, 64)
			got, gotExp, cok := decomposeDecimal(out, candDigits[:0])
			if cok && gotExp == wantExp && string(got) == string(want) {
				return cand
			}
			if up == down { // step 0: one candidate
				break
			}
		}
		up = math.Nextafter(up, math.Inf(1))
		down = math.Nextafter(down, math.Inf(-1))
	}
	return f
}

// decomposeDecimal normalizes a JSON number token into its significand
// digits (leading and trailing zeros stripped) and a decimal exponent
// such that value = 0.<digits> × 10^exp. Reports !ok for zero values,
// tokens with more significant digits than fit dst, or malformed
// input.
func decomposeDecimal(tok []byte, dst []byte) (digits []byte, exp int, ok bool) {
	i := 0
	if i < len(tok) && (tok[i] == '-' || tok[i] == '+') {
		i++
	}
	intDigits := 0
	sawPoint := false
	leading := true
	pending := 0 // buffered zeros that only count if a nonzero digit follows
	for ; i < len(tok); i++ {
		c := tok[i]
		switch {
		case c >= '0' && c <= '9':
			if !sawPoint {
				intDigits++
			}
			if c == '0' {
				if !leading {
					pending++
				}
				continue
			}
			leading = false
			for ; pending > 0; pending-- {
				if len(dst) == cap(dst) {
					return nil, 0, false
				}
				dst = append(dst, '0')
			}
			if len(dst) == cap(dst) {
				return nil, 0, false
			}
			dst = append(dst, c)
		case c == '.':
			if sawPoint {
				return nil, 0, false
			}
			sawPoint = true
		case c == 'e' || c == 'E':
			e, eok := parseExpTail(tok[i+1:])
			if !eok {
				return nil, 0, false
			}
			if len(dst) == 0 {
				return nil, 0, false // zero
			}
			return dst, intDigits - countLeadingZeros(tok) + e, true
		default:
			return nil, 0, false
		}
	}
	if len(dst) == 0 {
		return nil, 0, false // zero
	}
	return dst, intDigits - countLeadingZeros(tok), true
}

// countLeadingZeros counts zero digits before the first significant
// digit in the integer-and-fraction part of the token (sign skipped),
// so "0.00123" yields 3 ("0", "0", "0" — the integer zero plus two
// fractional zeros) and the decomposed exponent comes out right.
func countLeadingZeros(tok []byte) int {
	i := 0
	if i < len(tok) && (tok[i] == '-' || tok[i] == '+') {
		i++
	}
	n := 0
	for ; i < len(tok); i++ {
		switch tok[i] {
		case '0':
			n++
		case '.':
		default:
			return n
		}
	}
	return n
}

// parseExpTail parses the signed integer after 'e'/'E'.
func parseExpTail(b []byte) (int, bool) {
	i, neg := 0, false
	if i < len(b) && (b[i] == '-' || b[i] == '+') {
		neg = b[i] == '-'
		i++
	}
	if i >= len(b) {
		return 0, false
	}
	e := 0
	for ; i < len(b); i++ {
		if b[i] < '0' || b[i] > '9' {
			return 0, false
		}
		if e < 1<<20 {
			e = e*10 + int(b[i]-'0')
		}
	}
	if neg {
		e = -e
	}
	return e, true
}

// numberRow parses a JSON array of numbers, appending to dst.
func (s *scanner) numberRow(dst []float64) ([]float64, error) {
	if err := s.expect('['); err != nil {
		return dst, err
	}
	c, err := s.peek()
	if err != nil {
		return dst, err
	}
	if c == ']' {
		s.i++
		return dst, nil
	}
	for {
		v, err := s.number()
		if err != nil {
			return dst, err
		}
		dst = append(dst, v)
		c, err := s.peek()
		if err != nil {
			return dst, err
		}
		s.i++
		switch c {
		case ',':
		case ']':
			return dst, nil
		default:
			return dst, fmt.Errorf("wire: expected ',' or ']' at offset %d", s.i-1)
		}
	}
}

// skipValue consumes one JSON value of any shape (for unknown keys).
func (s *scanner) skipValue() error {
	c, err := s.peek()
	if err != nil {
		return err
	}
	switch c {
	case '"':
		_, err := s.key()
		return err
	case '{', '[':
		open, close := byte('{'), byte('}')
		if c == '[' {
			open, close = '[', ']'
		}
		depth := 0
		for s.i < len(s.b) {
			switch s.b[s.i] {
			case '"':
				if _, err := s.key(); err != nil {
					return err
				}
				continue
			case open:
				depth++
			case close:
				depth--
				if depth == 0 {
					s.i++
					return nil
				}
			}
			s.i++
		}
		return errTruncated
	case 't':
		return s.literal("true")
	case 'f':
		return s.literal("false")
	case 'n':
		return s.literal("null")
	default:
		_, err := s.number()
		return err
	}
}

// literal consumes an exact keyword, byte-verified — a blind index
// advance would let malformed bodies like {"x":truu} realign on the
// following comma and parse as valid.
func (s *scanner) literal(want string) error {
	if len(s.b)-s.i < len(want) {
		return errTruncated
	}
	if string(s.b[s.i:s.i+len(want)]) != want {
		return fmt.Errorf("wire: malformed literal at offset %d", s.i)
	}
	s.i += len(want)
	return nil
}

// boolean parses true/false.
func (s *scanner) boolean() (bool, error) {
	c, err := s.peek()
	if err != nil {
		return false, err
	}
	switch c {
	case 't':
		return true, s.literal("true")
	case 'f':
		return false, s.literal("false")
	}
	return false, fmt.Errorf("wire: expected boolean at offset %d", s.i)
}
