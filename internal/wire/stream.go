package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Raw-stream transport framing. HTTP frames decision bodies with
// Content-Length; a persistent raw TCP connection needs its own
// session layer instead, and this file is it — deliberately thin, so
// the payloads crossing it are the exact request/response frames the
// codecs above already produce:
//
//	client hello := 'D' 'J' 'V' 'S' ver:u8 enc:u8
//	server hello := 'D' 'J' 'V' 'S' ver:u8 enc:u8
//	envelope     := elen:u32 id:u32 flags:u8 payload
//
// The hello exchange is the content negotiation the HTTP plane does
// with Content-Type: the client names the encoding it will send
// (EncodingJSON or EncodingBinary) plus the protocol version byte,
// and the server echoes the encoding it accepts — today always the
// requested one — or closes on a version it does not speak. Both
// sides fail loudly on a magic or version mismatch, so a stray
// HTTP client (or an old peer) never silently misparses.
//
// Every envelope after the hello carries a caller-chosen request id.
// Responses echo the id of the request they answer, which is what
// lets a client pipeline many requests down one connection and match
// replies even if a future server answers them out of order (the
// current server answers in request order; clients MUST match by id,
// not by position). elen is little-endian and counts every byte
// after itself (id + flags + payload). On request envelopes flag
// bit0 distinguishes lookup (set) from classify (clear); on response
// envelopes flag bit0 set marks an error reply whose payload is a
// UTF-8 message instead of a wire frame.
//
// A Stream owns one connection's read/write buffers: envelope reads
// land in a reusable payload scratch, envelope writes are assembled
// in a reusable build buffer and issued as one Write (one packet
// under TCP_NODELAY). Steady-state envelope traffic is therefore
// allocation-free once the buffers have warmed up to the workload's
// message sizes.

// Stream protocol constants.
const (
	// StreamVersion is the raw-stream session-layer version emitted
	// and accepted by this package. It is deliberately separate from
	// the payload codec Version: the envelope layout can evolve
	// without touching the frame codecs, and vice versa.
	StreamVersion = 1

	// StreamFlagLookup marks a request envelope as a lookup (clear =
	// classify).
	StreamFlagLookup = 0x01
	// StreamFlagError marks a response envelope whose payload is a
	// UTF-8 error message rather than a response frame.
	StreamFlagError = 0x01
	// StreamFlagPing marks a liveness-probe envelope: the payload is
	// empty and never decoded, and the server answers with an empty
	// ping-flagged envelope echoing the id. Health probes use it to
	// verify the TCP decision plane end to end (accept, hello, framing,
	// the serving goroutine) without touching a repository. Valid on
	// both request and response envelopes; bit0 keeps its per-direction
	// meaning and is ignored when the ping bit is set.
	StreamFlagPing = 0x02
	// StreamFlagTrace marks a request envelope whose payload is
	// prefixed by a 16-byte trace context (trace id + parent span id,
	// little-endian u64 each — see internal/obs) ahead of the usual
	// wire frame; elen counts the prefix. The serving side strips the
	// prefix, records its hop span, and answers with an ordinary
	// untraced envelope. Valid on request envelopes only; a response
	// never carries the bit.
	StreamFlagTrace = 0x04

	// helloLen is the wire size of either hello.
	helloLen = 6
	// envelopeHeaderLen is id + flags, the fixed bytes elen counts
	// beyond the payload.
	envelopeHeaderLen = 5
)

// streamMagic guards against cross-protocol connections (an HTTP
// client dialing the TCP port, or vice versa).
var streamMagic = [4]byte{'D', 'J', 'V', 'S'}

// errStreamTruncated reports a connection that died mid-frame.
var errStreamTruncated = errors.New("wire: stream truncated mid-frame")

// Stream frames wire envelopes over one byte-stream connection,
// owning the connection's read/write scratch. Not safe for
// concurrent use: callers serialize, or split reads and writes onto
// two Streams over the same connection.
type Stream struct {
	br *bufio.Reader
	w  io.Writer

	payload []byte // envelope read scratch; aliased by ReadEnvelope results
	wbuf    []byte // envelope write scratch

	// hdr is the envelope header read scratch. A stack array would
	// escape through the io.ReadFull interface call and cost one
	// allocation per envelope; a field on the already-heap Stream
	// does not.
	hdr [4 + envelopeHeaderLen]byte
}

// NewStream wraps one connection. The read side is buffered here;
// callers must not read from rw behind the Stream's back.
func NewStream(rw io.ReadWriter) *Stream {
	return &Stream{br: bufio.NewReaderSize(rw, 16<<10), w: rw}
}

// WriteClientHello sends the client half of the handshake, naming
// the payload encoding this connection will carry.
func (s *Stream) WriteClientHello(enc Encoding) error {
	return s.writeHello(enc)
}

// WriteServerHello sends the server half of the handshake, echoing
// the encoding the server accepted.
func (s *Stream) WriteServerHello(enc Encoding) error {
	return s.writeHello(enc)
}

func (s *Stream) writeHello(enc Encoding) error {
	var b [helloLen]byte
	copy(b[:], streamMagic[:])
	b[4] = StreamVersion
	b[5] = byte(enc)
	_, err := s.w.Write(b[:])
	return err
}

// ReadClientHello validates the peer's hello and returns the
// encoding it negotiated. The errors are deliberately specific: a
// magic mismatch means a foreign protocol hit the port, a version
// mismatch means a peer from another release.
func (s *Stream) ReadClientHello() (Encoding, error) { return s.readHello() }

// ReadServerHello validates the server's hello and returns the
// encoding the server accepted; callers should verify it matches the
// one they requested.
func (s *Stream) ReadServerHello() (Encoding, error) { return s.readHello() }

func (s *Stream) readHello() (Encoding, error) {
	var b [helloLen]byte
	if _, err := io.ReadFull(s.br, b[:]); err != nil {
		return 0, fmt.Errorf("wire: reading stream hello: %w", err)
	}
	if b[0] != streamMagic[0] || b[1] != streamMagic[1] || b[2] != streamMagic[2] || b[3] != streamMagic[3] {
		return 0, fmt.Errorf("wire: bad stream magic %q (not a dejavu decision stream)", b[:4])
	}
	if b[4] != StreamVersion {
		return 0, fmt.Errorf("wire: unsupported stream version %d (this side speaks %d)", b[4], StreamVersion)
	}
	switch Encoding(b[5]) {
	case EncodingJSON, EncodingBinary:
		return Encoding(b[5]), nil
	}
	return 0, fmt.Errorf("wire: unknown stream encoding byte %d", b[5])
}

// ReadEnvelope reads one envelope, returning its request id, flags,
// and payload. The payload aliases the Stream's scratch — valid
// until the next ReadEnvelope. maxPayload bounds the payload size
// (defense against hostile or desynchronized peers); io.EOF before
// the first header byte is returned verbatim so callers can tell a
// clean close from a truncated frame.
func (s *Stream) ReadEnvelope(maxPayload int) (id uint32, flags byte, payload []byte, err error) {
	hdr := s.hdr[:]
	if _, err := io.ReadFull(s.br, hdr[:1]); err != nil {
		if err == io.EOF {
			return 0, 0, nil, io.EOF // clean close between envelopes
		}
		return 0, 0, nil, errStreamTruncated
	}
	if _, err := io.ReadFull(s.br, hdr[1:]); err != nil {
		return 0, 0, nil, errStreamTruncated
	}
	elen := binary.LittleEndian.Uint32(hdr[:4])
	if elen < envelopeHeaderLen {
		return 0, 0, nil, fmt.Errorf("wire: envelope length %d shorter than its header", elen)
	}
	n := int(elen) - envelopeHeaderLen
	if n > maxPayload {
		return 0, 0, nil, fmt.Errorf("wire: envelope payload %d bytes exceeds limit %d", n, maxPayload)
	}
	id = binary.LittleEndian.Uint32(hdr[4:8])
	flags = hdr[8]
	if cap(s.payload) < n {
		s.payload = make([]byte, n)
	}
	s.payload = s.payload[:n]
	if _, err := io.ReadFull(s.br, s.payload); err != nil {
		return 0, 0, nil, errStreamTruncated
	}
	return id, flags, s.payload, nil
}

// WriteEnvelope frames payload under (id, flags) and writes it as a
// single Write call. The payload is copied into the Stream's write
// scratch, so the caller's buffer is free the moment this returns.
func (s *Stream) WriteEnvelope(id uint32, flags byte, payload []byte) error {
	return s.WriteEnvelopeParts(id, flags, nil, payload)
}

// WriteEnvelopeParts frames prefix ++ payload under (id, flags) as one
// envelope in a single Write call, without requiring the caller to
// concatenate them first. The trace plane uses it to slide a 16-byte
// trace context ahead of an already-encoded frame allocation-free.
func (s *Stream) WriteEnvelopeParts(id uint32, flags byte, prefix, payload []byte) error {
	need := 4 + envelopeHeaderLen + len(prefix) + len(payload)
	if cap(s.wbuf) < need {
		s.wbuf = make([]byte, 0, need)
	}
	b := s.wbuf[:4+envelopeHeaderLen]
	binary.LittleEndian.PutUint32(b, uint32(envelopeHeaderLen+len(prefix)+len(payload)))
	binary.LittleEndian.PutUint32(b[4:], id)
	b[8] = flags
	b = append(b, prefix...)
	b = append(b, payload...)
	s.wbuf = b
	_, err := s.w.Write(b)
	return err
}
