package wire

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestBinaryRequestRoundTrip(t *testing.T) {
	var req Request
	req.SetTemplate("cassandra")
	req.Bucket = 3
	req.AppendRow([]float64{1.5, -2, 300})
	req.AppendRow([]float64{0, math.MaxFloat64, 5e-324})

	frame, err := req.AppendBinary(nil)
	if err != nil {
		t.Fatal(err)
	}
	var back Request
	if err := back.DecodeBinary(frame); err != nil {
		t.Fatal(err)
	}
	if string(back.Template) != "cassandra" || back.Bucket != 3 || back.Rows() != 2 {
		t.Fatalf("round trip: %+v", back)
	}
	for i := 0; i < req.Rows(); i++ {
		want, got := req.Row(i), back.Row(i)
		for j := range want {
			if math.Float64bits(want[j]) != math.Float64bits(got[j]) {
				t.Errorf("row %d col %d: %v != %v", i, j, got[j], want[j])
			}
		}
	}
}

func TestBinaryRequestRejectsRagged(t *testing.T) {
	var req Request
	req.AppendRow([]float64{1, 2})
	req.AppendRow([]float64{3})
	if _, err := req.AppendBinary(nil); err == nil {
		t.Fatal("ragged batch must not encode")
	}
}

func TestBinaryResponseRoundTrip(t *testing.T) {
	resp := Response{Version: 41, Lookup: true, Results: []Decision{
		{Class: 2, Certainty: 0.953, Hit: true, Type: 2, Count: 5},
		{Class: -1, Certainty: 0.31, Unforeseen: true},
		{Class: 7, Certainty: 1},
	}}
	frame := resp.AppendBinary(nil)
	var back Response
	if err := back.DecodeBinary(frame); err != nil {
		t.Fatal(err)
	}
	if back.Version != 41 || !back.Lookup || len(back.Results) != 3 {
		t.Fatalf("round trip: %+v", back)
	}
	for i := range resp.Results {
		if back.Results[i] != resp.Results[i] {
			t.Errorf("result %d: got %+v, want %+v", i, back.Results[i], resp.Results[i])
		}
	}
}

func TestBinaryDecodeErrors(t *testing.T) {
	var good Request
	good.SetTemplate("t")
	good.Bucket = 1
	good.AppendRow([]float64{1, 2})
	frame, err := good.AppendBinary(nil)
	if err != nil {
		t.Fatal(err)
	}

	corrupt := func(mut func(b []byte) []byte) error {
		b := append([]byte(nil), frame...)
		b = mut(b)
		var req Request
		return req.DecodeBinary(b)
	}
	cases := map[string]func(b []byte) []byte{
		"empty":            func(b []byte) []byte { return nil },
		"truncated header": func(b []byte) []byte { return b[:5] },
		"truncated values": func(b []byte) []byte { return b[:len(b)-3] },
		"bad length":       func(b []byte) []byte { b[0] ^= 0xFF; return b },
		"bad magic":        func(b []byte) []byte { b[4] = 0x00; return b },
		"bad version":      func(b []byte) []byte { b[5] = 9; return b },
		"trailing bytes":   func(b []byte) []byte { return append(b, 0) },
	}
	for name, mut := range cases {
		if err := corrupt(mut); err == nil {
			t.Errorf("%s: expected decode error", name)
		}
	}
	// A structurally valid frame with zero rows is still no request.
	var req, zero Request
	empty, err := zero.AppendBinary(nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := req.DecodeBinary(empty); err == nil || !strings.Contains(err.Error(), "no signatures") {
		t.Errorf("zero-row frame: %v", err)
	}

	var resp Response
	if err := resp.DecodeBinary(frame); err == nil {
		t.Error("request frame must not decode as a response")
	}
}

// TestBinaryHostileDimensions pins the overflow guard: a hand-built
// frame whose rows×width wraps uint64 (or exceeds the value budget)
// must be rejected at decode, not panic the row indexer downstream.
func TestBinaryHostileDimensions(t *testing.T) {
	build := func(rows, width uint64) []byte {
		b := []byte{0, 0, 0, 0, reqMagic, Version}
		b = appendUvarint(b, 0) // empty template
		b = appendUvarint(b, 0) // bucket
		b = appendUvarint(b, rows)
		b = appendUvarint(b, width)
		// No values: a dimensions lie should fail before (or while)
		// reading them regardless.
		binaryPutLen(b)
		return b
	}
	cases := map[string][2]uint64{
		"wrapping product":  {1 << 20, 1 << 44}, // rows*width ≡ 0 (mod 2^64)
		"huge width":        {1, 1 << 30},
		"huge rows":         {1 << 30, 1},
		"over value budget": {1 << 20, 1 << 10},
	}
	for name, dims := range cases {
		var req Request
		if err := req.DecodeBinary(build(dims[0], dims[1])); err == nil {
			t.Errorf("%s (%d×%d): expected decode error", name, dims[0], dims[1])
		}
	}
}

// binaryPutLen backpatches the u32 length prefix of a hand-built frame.
func binaryPutLen(b []byte) {
	b[0] = byte(len(b) - 4)
	b[1] = byte((len(b) - 4) >> 8)
	b[2] = byte((len(b) - 4) >> 16)
	b[3] = byte((len(b) - 4) >> 24)
}

func TestBinaryReuseNoGrowth(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var req, back Request
	var frame []byte
	for iter := 0; iter < 50; iter++ {
		req.Reset()
		req.SetTemplate("svc")
		req.Bucket = iter % 4
		for i := 0; i < 16; i++ {
			row := make([]float64, 6)
			for j := range row {
				row[j] = rng.NormFloat64()
			}
			req.AppendRow(row)
		}
		var err error
		frame, err = req.AppendBinary(frame[:0])
		if err != nil {
			t.Fatal(err)
		}
		if err := back.DecodeBinary(frame); err != nil {
			t.Fatal(err)
		}
		if back.Rows() != 16 || back.Bucket != iter%4 {
			t.Fatalf("iter %d: %+v", iter, back)
		}
	}
}
