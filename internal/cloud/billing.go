package cloud

import (
	"fmt"
	"io"
	"time"
)

// BillItem is one line of an itemized bill: an allocation held for a
// period.
type BillItem struct {
	// From and To delimit the period (offsets from the deployment
	// start).
	From, To time.Duration
	// Allocation is what was provisioned (and billed) in the period.
	Allocation Allocation
	// Cost is the line total in USD.
	Cost float64
}

// Bill is an itemized record of a deployment's spending, mirroring a
// cloud provider's usage report.
type Bill struct {
	Items []BillItem
}

// Total returns the bill total.
func (b *Bill) Total() float64 {
	sum := 0.0
	for _, it := range b.Items {
		sum += it.Cost
	}
	return sum
}

// Write renders the bill as a usage report.
func (b *Bill) Write(w io.Writer) error {
	for _, it := range b.Items {
		if _, err := fmt.Fprintf(w, "%10s - %10s  %-12s $%8.4f\n",
			it.From, it.To, it.Allocation, it.Cost); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%35s $%8.4f\n", "total", b.Total())
	return err
}

// add appends a line, merging with the previous line when the
// allocation is unchanged and the periods are contiguous.
func (b *Bill) add(from, to time.Duration, a Allocation) {
	if to <= from {
		return
	}
	cost := a.CostFor(to - from)
	if n := len(b.Items); n > 0 {
		last := &b.Items[n-1]
		if last.To == from && last.Allocation.Equal(a) {
			last.To = to
			last.Cost += cost
			return
		}
	}
	b.Items = append(b.Items, BillItem{From: from, To: to, Allocation: a, Cost: cost})
}

// MeteredDeployment wraps a Deployment and keeps the itemized bill.
type MeteredDeployment struct {
	*Deployment
	bill      Bill
	lastPoint time.Duration
	lastAlloc Allocation
}

// NewMeteredDeployment starts a metered deployment.
func NewMeteredDeployment(initial Allocation) (*MeteredDeployment, error) {
	d, err := NewDeployment(initial)
	if err != nil {
		return nil, err
	}
	return &MeteredDeployment{Deployment: d, lastAlloc: initial}, nil
}

// Meter brings the itemized bill up to the given time; call it
// periodically (e.g. once per simulation step) and before reading the
// bill.
func (m *MeteredDeployment) Meter(now time.Duration) {
	if now <= m.lastPoint {
		return
	}
	active := m.Allocation(now)
	if !active.Equal(m.lastAlloc) {
		// The switch happened somewhere inside (lastPoint, now];
		// bill the whole span at the allocation observed at each
		// end. Metering granularity bounds the error.
		mid := (m.lastPoint + now) / 2
		m.bill.add(m.lastPoint, mid, m.lastAlloc)
		m.bill.add(mid, now, active)
	} else {
		m.bill.add(m.lastPoint, now, active)
	}
	m.lastAlloc = active
	m.lastPoint = now
}

// Bill returns the itemized bill accumulated so far.
func (m *MeteredDeployment) Bill() *Bill { return &m.bill }
