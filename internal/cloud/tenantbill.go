package cloud

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// TenantUsage is one tenant's aggregated spending over a fleet run.
type TenantUsage struct {
	// Tenant identifies the tenant (the fleet VM name).
	Tenant string
	// Service is the service template the tenant runs.
	Service string
	// Cost is the provisioning bill in USD.
	Cost float64
	// InstanceHours is the time-integrated instance count.
	InstanceHours float64
	// Duration is the billed wall-clock span.
	Duration time.Duration
}

// FleetBill aggregates per-tenant usage across a fleet of concurrently
// simulated deployments. It is safe for concurrent use: fleet workers
// post each tenant's usage as its run finishes.
type FleetBill struct {
	mu     sync.Mutex
	usage  map[string]TenantUsage
	posted int
}

// NewFleetBill returns an empty aggregator.
func NewFleetBill() *FleetBill {
	return &FleetBill{usage: make(map[string]TenantUsage)}
}

// Post records (or accumulates onto) a tenant's usage.
func (b *FleetBill) Post(u TenantUsage) {
	b.mu.Lock()
	defer b.mu.Unlock()
	cur := b.usage[u.Tenant]
	cur.Tenant = u.Tenant
	if u.Service != "" {
		cur.Service = u.Service
	}
	cur.Cost += u.Cost
	cur.InstanceHours += u.InstanceHours
	cur.Duration += u.Duration
	b.usage[u.Tenant] = cur
	b.posted++
}

// Total returns the fleet-wide bill total in USD.
func (b *FleetBill) Total() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	sum := 0.0
	for _, u := range b.usage {
		sum += u.Cost
	}
	return sum
}

// Tenants returns every tenant's usage, sorted by descending cost and
// then by name for stable reports.
func (b *FleetBill) Tenants() []TenantUsage {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]TenantUsage, 0, len(b.usage))
	for _, u := range b.usage {
		out = append(out, u)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Cost != out[j].Cost {
			return out[i].Cost > out[j].Cost
		}
		return out[i].Tenant < out[j].Tenant
	})
	return out
}

// ByService rolls the bill up per service template, sorted by
// descending cost then name.
func (b *FleetBill) ByService() []TenantUsage {
	b.mu.Lock()
	defer b.mu.Unlock()
	agg := make(map[string]TenantUsage)
	for _, u := range b.usage {
		cur := agg[u.Service]
		cur.Tenant = u.Service
		cur.Service = u.Service
		cur.Cost += u.Cost
		cur.InstanceHours += u.InstanceHours
		cur.Duration += u.Duration
		agg[u.Service] = cur
	}
	out := make([]TenantUsage, 0, len(agg))
	for _, u := range agg {
		out = append(out, u)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Cost != out[j].Cost {
			return out[i].Cost > out[j].Cost
		}
		return out[i].Tenant < out[j].Tenant
	})
	return out
}

// Posts returns how many usage records were posted (at least one per
// tenant; a tenant may accumulate several).
func (b *FleetBill) Posts() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.posted
}

// Write renders the per-tenant usage report.
func (b *FleetBill) Write(w io.Writer) error { return b.WriteTop(w, 0) }

// WriteTop renders the report limited to the top n tenants by cost
// (n <= 0 means all); the total line always covers the whole fleet.
func (b *FleetBill) WriteTop(w io.Writer, n int) error {
	tenants := b.Tenants()
	if n > 0 && len(tenants) > n {
		tenants = tenants[:n]
	}
	for _, u := range tenants {
		if _, err := fmt.Fprintf(w, "%-20s %-10s %8.1f inst-h  $%10.2f\n",
			u.Tenant, u.Service, u.InstanceHours, u.Cost); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%-31s total  $%10.2f\n", "", b.Total())
	return err
}
