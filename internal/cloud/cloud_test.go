package cloud

import (
	"math"
	"testing"
	"time"
)

func TestCatalogAndLookup(t *testing.T) {
	cat := Catalog()
	if len(cat) != 3 {
		t.Fatalf("catalog size=%d want 3", len(cat))
	}
	for i := 1; i < len(cat); i++ {
		if cat[i].Capacity <= cat[i-1].Capacity {
			t.Errorf("catalog not in ascending capacity order at %d", i)
		}
	}
	lt, err := TypeByName("large")
	if err != nil || lt.PricePerHour != 0.34 {
		t.Errorf("large lookup: %+v err=%v (paper price $0.34/h)", lt, err)
	}
	xl, err := TypeByName("xlarge")
	if err != nil || xl.PricePerHour != 0.68 {
		t.Errorf("xlarge lookup: %+v err=%v (paper price $0.68/h)", xl, err)
	}
	if _, err := TypeByName("gpu"); err == nil {
		t.Error("unknown type should error")
	}
}

func TestAllocationAccessors(t *testing.T) {
	a := Allocation{Type: Large, Count: 4}
	if a.Capacity() != 4 {
		t.Errorf("Capacity=%v want 4", a.Capacity())
	}
	if math.Abs(a.HourlyCost()-1.36) > 1e-9 {
		t.Errorf("HourlyCost=%v want 1.36", a.HourlyCost())
	}
	if math.Abs(a.CostFor(30*time.Minute)-0.68) > 1e-9 {
		t.Errorf("CostFor(30m)=%v want 0.68", a.CostFor(30*time.Minute))
	}
	if a.String() != "4 x large" {
		t.Errorf("String=%q", a.String())
	}
	b := Allocation{Type: Large, Count: 4}
	if !a.Equal(b) {
		t.Error("equal allocations not Equal")
	}
	if a.Equal(Allocation{Type: XLarge, Count: 4}) {
		t.Error("different types should not be Equal")
	}
	if a.Equal(Allocation{Type: Large, Count: 5}) {
		t.Error("different counts should not be Equal")
	}
}

func TestAllocationValidate(t *testing.T) {
	if err := (Allocation{Type: Large, Count: 0}).Validate(); err == nil {
		t.Error("zero count should fail")
	}
	if err := (Allocation{Count: 3}).Validate(); err == nil {
		t.Error("missing type should fail")
	}
	if err := (Allocation{Type: Large, Count: 1}).Validate(); err != nil {
		t.Errorf("valid allocation: %v", err)
	}
}

func TestXLargeIsTwiceLarge(t *testing.T) {
	// The scale-up experiments rely on xlarge = 2x large in both
	// capacity and price.
	if XLarge.Capacity != 2*Large.Capacity {
		t.Errorf("xlarge capacity %v != 2x large %v", XLarge.Capacity, Large.Capacity)
	}
	if math.Abs(XLarge.PricePerHour-2*Large.PricePerHour) > 1e-9 {
		t.Errorf("xlarge price %v != 2x large %v", XLarge.PricePerHour, Large.PricePerHour)
	}
}

func TestDeploymentWarmup(t *testing.T) {
	d, err := NewDeployment(Allocation{Type: Large, Count: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Apply(time.Minute, Allocation{Type: Large, Count: 6}); err != nil {
		t.Fatal(err)
	}
	// Before warm-up completes the old allocation serves.
	if got := d.Allocation(time.Minute + 10*time.Second); got.Count != 2 {
		t.Errorf("during warmup count=%d want 2", got.Count)
	}
	if !d.InTransition(time.Minute + 10*time.Second) {
		t.Error("should be in transition")
	}
	if got := d.TargetAllocation(); got.Count != 6 {
		t.Errorf("target count=%d want 6", got.Count)
	}
	// After warm-up the new allocation serves.
	after := time.Minute + Large.WarmupDelay + time.Second
	if got := d.Allocation(after); got.Count != 6 {
		t.Errorf("after warmup count=%d want 6", got.Count)
	}
	if d.InTransition(after) {
		t.Error("transition should be over")
	}
	if d.Changes() != 1 {
		t.Errorf("Changes=%d want 1", d.Changes())
	}
}

func TestDeploymentApplySameIsNoop(t *testing.T) {
	d, _ := NewDeployment(Allocation{Type: Large, Count: 2})
	if err := d.Apply(time.Minute, Allocation{Type: Large, Count: 2}); err != nil {
		t.Fatal(err)
	}
	if d.Changes() != 0 {
		t.Errorf("no-op apply counted as change: %d", d.Changes())
	}
	if d.InTransition(time.Minute) {
		t.Error("no-op apply should not start a transition")
	}
}

func TestDeploymentApplyInvalid(t *testing.T) {
	d, _ := NewDeployment(Allocation{Type: Large, Count: 2})
	if err := d.Apply(0, Allocation{Type: Large, Count: 0}); err == nil {
		t.Error("invalid allocation should error")
	}
}

func TestNewDeploymentInvalid(t *testing.T) {
	if _, err := NewDeployment(Allocation{}); err == nil {
		t.Error("invalid initial allocation should error")
	}
}

func TestDeploymentBilling(t *testing.T) {
	d, _ := NewDeployment(Allocation{Type: Large, Count: 2})
	// 2 large for 1 hour = $0.68.
	if got := d.Cost(time.Hour); math.Abs(got-0.68) > 1e-9 {
		t.Errorf("Cost(1h)=%v want 0.68", got)
	}
	// Scale to 4 large at t=1h; warm-up 30s billed at old rate, then
	// new rate. Old: 1h + 30s at 0.68/h; new: remainder at 1.36/h.
	if err := d.Apply(time.Hour, Allocation{Type: Large, Count: 4}); err != nil {
		t.Fatal(err)
	}
	at2h := d.Cost(2 * time.Hour)
	oldPart := 0.68 * (1 + 30.0/3600)
	newPart := 1.36 * (3600 - 30.0) / 3600
	want := oldPart + newPart
	if math.Abs(at2h-want) > 1e-6 {
		t.Errorf("Cost(2h)=%v want %v", at2h, want)
	}
	// Cost is monotone.
	if d.Cost(3*time.Hour) <= at2h {
		t.Error("cost must grow over time")
	}
}

func TestDeploymentCostIdempotentQueries(t *testing.T) {
	d, _ := NewDeployment(Allocation{Type: Large, Count: 1})
	c1 := d.Cost(time.Hour)
	c2 := d.Cost(time.Hour)
	if c1 != c2 {
		t.Errorf("repeated Cost at same time differ: %v vs %v", c1, c2)
	}
}

func TestDeploymentInterference(t *testing.T) {
	d, _ := NewDeployment(Allocation{Type: Large, Count: 4})
	if got := d.EffectiveCapacity(0); got != 4 {
		t.Errorf("capacity=%v want 4", got)
	}
	if err := d.SetInterference(Interference{Fraction: 0.2}); err != nil {
		t.Fatal(err)
	}
	if got := d.EffectiveCapacity(0); math.Abs(got-3.2) > 1e-9 {
		t.Errorf("interfered capacity=%v want 3.2", got)
	}
	if err := d.SetInterference(Interference{Fraction: 1.0}); err == nil {
		t.Error("fraction 1.0 should be rejected")
	}
	if err := d.SetInterference(Interference{Fraction: -0.1}); err == nil {
		t.Error("negative fraction should be rejected")
	}
}

func TestDeploymentScaleUp(t *testing.T) {
	// Vertical scaling: same count, bigger type.
	d, _ := NewDeployment(Allocation{Type: Large, Count: 5})
	if err := d.Apply(0, Allocation{Type: XLarge, Count: 5}); err != nil {
		t.Fatal(err)
	}
	after := XLarge.WarmupDelay + time.Second
	if got := d.EffectiveCapacity(after); got != 10 {
		t.Errorf("capacity after scale-up=%v want 10", got)
	}
}
