// Package cloud simulates the virtualized hosting platform the paper
// evaluates on (Amazon EC2, July 2011): an instance catalog with the
// large and extra-large types used in the scale-up case study, hourly
// billing at the paper's prices ($0.34/h large, $0.68/h extra large),
// horizontal (scale-out) and vertical (scale-up) provisioning with
// warm-up delays, and per-instance performance interference from
// co-located tenants. DejaVu only interacts with the platform through
// "apply this allocation" and "how much capacity do I actually get",
// which is exactly what this package models.
package cloud

import (
	"errors"
	"fmt"
	"time"
)

// InstanceType describes one entry of the provider's catalog.
type InstanceType struct {
	// Name identifies the type ("small", "large", "xlarge").
	Name string
	// Capacity is the relative compute capacity in EC2-large units
	// (large = 1.0, xlarge = 2.0).
	Capacity float64
	// PricePerHour is the on-demand price in USD.
	PricePerHour float64
	// WarmupDelay is how long a pre-created instance of this type
	// takes to become useful after activation. The paper pre-creates
	// VMs: "Pre-created VMs are ready for instant use, except for a
	// short warm-up time."
	WarmupDelay time.Duration
}

// The catalog entries used throughout the evaluation. Prices are the
// paper's "as of July 2011" EC2 numbers.
var (
	Small  = InstanceType{Name: "small", Capacity: 0.25, PricePerHour: 0.085, WarmupDelay: 30 * time.Second}
	Large  = InstanceType{Name: "large", Capacity: 1.0, PricePerHour: 0.34, WarmupDelay: 30 * time.Second}
	XLarge = InstanceType{Name: "xlarge", Capacity: 2.0, PricePerHour: 0.68, WarmupDelay: 45 * time.Second}
)

// Catalog returns the instance types in ascending capacity order.
func Catalog() []InstanceType { return []InstanceType{Small, Large, XLarge} }

// TypeID is a compact pointer-free index into the instance catalog.
// Bulk record stores (the fleet's step-record arena) hold TypeIDs
// instead of InstanceType values so the GC never has to scan them:
// an InstanceType carries its Name string, and one string pointer per
// record is enough to make a multi-million-record slab a scan target.
type TypeID uint8

// The catalog indices. NoType is the zero value, representing the
// absence of an allocation (e.g. a zero Allocation).
const (
	NoType TypeID = iota
	SmallID
	LargeID
	XLargeID
)

// ID returns the catalog index for the type; unknown (including
// zero-value) types map to NoType.
func (t InstanceType) ID() TypeID {
	switch t.Name {
	case Small.Name:
		return SmallID
	case Large.Name:
		return LargeID
	case XLarge.Name:
		return XLargeID
	}
	return NoType
}

// Instance resolves the index back to the catalog entry; NoType (and
// out-of-range values) yield the zero InstanceType.
func (id TypeID) Instance() InstanceType {
	switch id {
	case SmallID:
		return Small
	case LargeID:
		return Large
	case XLargeID:
		return XLarge
	}
	return InstanceType{}
}

// TypeByName looks up a catalog entry.
func TypeByName(name string) (InstanceType, error) {
	for _, t := range Catalog() {
		if t.Name == name {
			return t, nil
		}
	}
	return InstanceType{}, fmt.Errorf("cloud: unknown instance type %q", name)
}

// Allocation is a resource allocation decision: how many instances of
// which type. It is the value DejaVu caches and reuses.
type Allocation struct {
	Type  InstanceType
	Count int
}

// Capacity returns the total compute capacity in large-instance units.
func (a Allocation) Capacity() float64 { return float64(a.Count) * a.Type.Capacity }

// HourlyCost returns the allocation's cost per hour in USD.
func (a Allocation) HourlyCost() float64 { return float64(a.Count) * a.Type.PricePerHour }

// CostFor returns the cost of holding this allocation for d.
func (a Allocation) CostFor(d time.Duration) float64 {
	return a.HourlyCost() * d.Hours()
}

// Equal reports whether two allocations are the same decision.
func (a Allocation) Equal(b Allocation) bool {
	return a.Type.Name == b.Type.Name && a.Count == b.Count
}

// String renders the allocation like "4 x large".
func (a Allocation) String() string { return fmt.Sprintf("%d x %s", a.Count, a.Type.Name) }

// Validate checks the allocation is usable.
func (a Allocation) Validate() error {
	if a.Count <= 0 {
		return fmt.Errorf("cloud: allocation count %d must be positive", a.Count)
	}
	if a.Type.Capacity <= 0 {
		return errors.New("cloud: allocation has no instance type")
	}
	return nil
}

// Interference describes contention from co-located tenants on one
// service instance: the fraction of the instance's capacity consumed
// by neighbours (the paper injects microbenchmarks occupying 10% or
// 20% of CPU and memory).
type Interference struct {
	// Fraction in [0, 1): capacity lost to co-located tenants.
	Fraction float64
}

// Deployment is a live deployment of a service on the simulated
// provider. Time is explicit: all methods take the current offset from
// the simulation start, so deployments are fully deterministic and
// never consult the wall clock.
type Deployment struct {
	current  Allocation
	pending  *Allocation
	readyAt  time.Duration
	lastBill time.Duration
	cost     float64
	interf   Interference
	changes  int
}

// NewDeployment starts a deployment with the given initial allocation,
// active immediately.
func NewDeployment(initial Allocation) (*Deployment, error) {
	if err := initial.Validate(); err != nil {
		return nil, err
	}
	return &Deployment{current: initial}, nil
}

// Apply requests a new allocation at the given time. The change
// becomes effective after the target type's warm-up delay; until then
// the old allocation keeps serving (and keeps being billed — the
// provider charges for what is provisioned). Applying an allocation
// equal to the current one is a no-op. Billing is brought up to date
// first.
func (d *Deployment) Apply(now time.Duration, a Allocation) error {
	if err := a.Validate(); err != nil {
		return err
	}
	d.settle(now)
	if a.Equal(d.current) && d.pending == nil {
		return nil
	}
	d.accrue(now)
	alloc := a
	d.pending = &alloc
	d.readyAt = now + a.Type.WarmupDelay
	d.changes++
	return nil
}

// settle promotes a pending allocation that has finished warming up.
func (d *Deployment) settle(now time.Duration) {
	if d.pending != nil && now >= d.readyAt {
		// Bill the interval served by the old allocation.
		d.accrue(d.readyAt)
		d.current = *d.pending
		d.pending = nil
	}
}

// accrue charges the current allocation from the last billing point to
// now.
func (d *Deployment) accrue(now time.Duration) {
	if now <= d.lastBill {
		return
	}
	d.cost += d.current.CostFor(now - d.lastBill)
	d.lastBill = now
}

// Allocation returns the allocation serving at the given time.
func (d *Deployment) Allocation(now time.Duration) Allocation {
	d.settle(now)
	return d.current
}

// TargetAllocation returns the most recently requested allocation,
// whether or not it has finished warming up.
func (d *Deployment) TargetAllocation() Allocation {
	if d.pending != nil {
		return *d.pending
	}
	return d.current
}

// InTransition reports whether a requested change is still warming up.
func (d *Deployment) InTransition(now time.Duration) bool {
	d.settle(now)
	return d.pending != nil
}

// SetInterference sets the co-located tenant contention affecting this
// deployment's instances.
func (d *Deployment) SetInterference(i Interference) error {
	if i.Fraction < 0 || i.Fraction >= 1 {
		return fmt.Errorf("cloud: interference fraction %v out of [0,1)", i.Fraction)
	}
	d.interf = i
	return nil
}

// Interference returns the current contention setting.
func (d *Deployment) Interference() Interference { return d.interf }

// EffectiveCapacity returns the capacity actually available to the
// service at the given time: the active allocation's nominal capacity
// reduced by interference.
func (d *Deployment) EffectiveCapacity(now time.Duration) float64 {
	d.settle(now)
	return d.current.Capacity() * (1 - d.interf.Fraction)
}

// Status returns the serving allocation, the most recently requested
// allocation, and whether a change is still warming up, settling
// pending work once — the simulation engine's per-step snapshot,
// equivalent to calling Allocation, TargetAllocation, and InTransition
// back to back.
func (d *Deployment) Status(now time.Duration) (active, target Allocation, inTransition bool) {
	d.settle(now)
	if d.pending != nil {
		return d.current, *d.pending, true
	}
	return d.current, d.current, false
}

// PendingReadyAt reports when the in-flight allocation change becomes
// active; ok is false when nothing is pending. Combined with Status it
// lets a caller cache the deployment snapshot between state-changing
// events instead of re-querying every step.
func (d *Deployment) PendingReadyAt() (readyAt time.Duration, ok bool) {
	if d.pending == nil {
		return 0, false
	}
	return d.readyAt, true
}

// Cost returns the accumulated bill up to the given time.
func (d *Deployment) Cost(now time.Duration) float64 {
	d.settle(now)
	d.accrue(now)
	return d.cost
}

// Changes returns how many allocation changes were requested.
func (d *Deployment) Changes() int { return d.changes }
