package cloud

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

// TestBillingAdditiveProperty: querying the bill at t1 and then t2
// must equal querying at t2 directly — accrual is path-independent.
func TestBillingAdditiveProperty(t *testing.T) {
	f := func(aCount, bCount uint8, t1Min, t2Min uint16) bool {
		ca := int(aCount%9) + 1
		cb := int(bCount%9) + 1
		tm1 := time.Duration(t1Min%600) * time.Minute
		tm2 := tm1 + time.Duration(t2Min%600)*time.Minute

		mk := func() *Deployment {
			d, err := NewDeployment(Allocation{Type: Large, Count: ca})
			if err != nil {
				return nil
			}
			_ = d.Apply(tm1/2, Allocation{Type: Large, Count: cb})
			return d
		}
		stepwise := mk()
		direct := mk()
		if stepwise == nil || direct == nil {
			return false
		}
		_ = stepwise.Cost(tm1) // intermediate query
		c1 := stepwise.Cost(tm2)
		c2 := direct.Cost(tm2)
		return math.Abs(c1-c2) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestCostMonotoneProperty: the bill never shrinks over time.
func TestCostMonotoneProperty(t *testing.T) {
	f := func(count uint8, steps uint8) bool {
		d, err := NewDeployment(Allocation{Type: Large, Count: int(count%9) + 1})
		if err != nil {
			return false
		}
		prev := 0.0
		for i := 0; i <= int(steps%40); i++ {
			c := d.Cost(time.Duration(i) * 7 * time.Minute)
			if c < prev-1e-12 {
				return false
			}
			prev = c
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestCapacityScalesWithCountProperty: capacity and hourly cost are
// linear in the instance count for a fixed type.
func TestCapacityScalesWithCountProperty(t *testing.T) {
	f := func(count uint8) bool {
		n := int(count%20) + 1
		a1 := Allocation{Type: XLarge, Count: 1}
		an := Allocation{Type: XLarge, Count: n}
		capOK := math.Abs(an.Capacity()-float64(n)*a1.Capacity()) < 1e-9
		costOK := math.Abs(an.HourlyCost()-float64(n)*a1.HourlyCost()) < 1e-9
		return capOK && costOK
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestInterferenceNeverIncreasesCapacityProperty.
func TestInterferenceNeverIncreasesCapacityProperty(t *testing.T) {
	f := func(count uint8, frac uint8) bool {
		d, err := NewDeployment(Allocation{Type: Large, Count: int(count%9) + 1})
		if err != nil {
			return false
		}
		clean := d.EffectiveCapacity(0)
		f64 := float64(frac%90) / 100
		if err := d.SetInterference(Interference{Fraction: f64}); err != nil {
			return false
		}
		dirty := d.EffectiveCapacity(0)
		return dirty <= clean+1e-12 && dirty >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
