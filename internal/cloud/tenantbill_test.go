package cloud

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestFleetBillAggregation(t *testing.T) {
	b := NewFleetBill()
	b.Post(TenantUsage{Tenant: "vm-a", Service: "cassandra", Cost: 10, InstanceHours: 5, Duration: time.Hour})
	b.Post(TenantUsage{Tenant: "vm-b", Service: "specweb", Cost: 30, InstanceHours: 2, Duration: time.Hour})
	b.Post(TenantUsage{Tenant: "vm-a", Service: "cassandra", Cost: 5, InstanceHours: 1, Duration: time.Hour})

	if got := b.Total(); math.Abs(got-45) > 1e-12 {
		t.Errorf("Total = %v, want 45", got)
	}
	if b.Posts() != 3 {
		t.Errorf("Posts = %d, want 3", b.Posts())
	}

	tenants := b.Tenants()
	if len(tenants) != 2 {
		t.Fatalf("Tenants = %+v, want 2 entries", tenants)
	}
	// Sorted by descending cost: vm-b ($30) first.
	if tenants[0].Tenant != "vm-b" || tenants[1].Tenant != "vm-a" {
		t.Errorf("tenant order: %s, %s", tenants[0].Tenant, tenants[1].Tenant)
	}
	// vm-a accumulated both posts.
	if tenants[1].Cost != 15 || tenants[1].InstanceHours != 6 || tenants[1].Duration != 2*time.Hour {
		t.Errorf("vm-a rollup: %+v", tenants[1])
	}

	byService := b.ByService()
	if len(byService) != 2 || byService[0].Service != "specweb" {
		t.Errorf("ByService: %+v", byService)
	}
}

func TestFleetBillTieBreakByName(t *testing.T) {
	b := NewFleetBill()
	b.Post(TenantUsage{Tenant: "vm-z", Cost: 7})
	b.Post(TenantUsage{Tenant: "vm-a", Cost: 7})
	tenants := b.Tenants()
	if tenants[0].Tenant != "vm-a" || tenants[1].Tenant != "vm-z" {
		t.Errorf("equal-cost tenants should sort by name: %+v", tenants)
	}
}

func TestFleetBillConcurrentPosts(t *testing.T) {
	b := NewFleetBill()
	const workers = 8
	const posts = 100
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < posts; i++ {
				b.Post(TenantUsage{
					Tenant:  fmt.Sprintf("vm-%d", w),
					Service: "cassandra",
					Cost:    1,
				})
			}
		}(w)
	}
	wg.Wait()
	if got := b.Total(); math.Abs(got-workers*posts) > 1e-9 {
		t.Errorf("Total = %v, want %d", got, workers*posts)
	}
	if got := len(b.Tenants()); got != workers {
		t.Errorf("%d tenants, want %d", got, workers)
	}
	if b.Posts() != workers*posts {
		t.Errorf("Posts = %d, want %d", b.Posts(), workers*posts)
	}
}

func TestFleetBillWrite(t *testing.T) {
	b := NewFleetBill()
	b.Post(TenantUsage{Tenant: "vm-a", Service: "rubis", Cost: 12.5, InstanceHours: 3})
	var buf bytes.Buffer
	if err := b.Write(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"vm-a", "rubis", "total", "12.50"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}
