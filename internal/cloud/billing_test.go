package cloud

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"
)

func TestBillAddAndTotal(t *testing.T) {
	var b Bill
	a2 := Allocation{Type: Large, Count: 2}
	a4 := Allocation{Type: Large, Count: 4}
	b.add(0, time.Hour, a2)
	b.add(time.Hour, 2*time.Hour, a2) // contiguous, same allocation: merged
	b.add(2*time.Hour, 3*time.Hour, a4)
	if len(b.Items) != 2 {
		t.Fatalf("items=%d want 2 (merge expected)", len(b.Items))
	}
	if b.Items[0].To != 2*time.Hour {
		t.Errorf("merged item ends at %v want 2h", b.Items[0].To)
	}
	// 2 large x 2h = 1.36; 4 large x 1h = 1.36.
	if math.Abs(b.Total()-2.72) > 1e-9 {
		t.Errorf("Total=%v want 2.72", b.Total())
	}
	// Degenerate periods ignored.
	b.add(3*time.Hour, 3*time.Hour, a2)
	if len(b.Items) != 2 {
		t.Error("zero-length period should be ignored")
	}
}

func TestBillWrite(t *testing.T) {
	var b Bill
	b.add(0, time.Hour, Allocation{Type: Large, Count: 3})
	var buf bytes.Buffer
	if err := b.Write(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "3 x large") || !strings.Contains(out, "total") {
		t.Errorf("bill output:\n%s", out)
	}
}

func TestMeteredDeployment(t *testing.T) {
	m, err := NewMeteredDeployment(Allocation{Type: Large, Count: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Meter every 10 minutes for 1 hour; scale at t=30m.
	for minute := 10; minute <= 30; minute += 10 {
		m.Meter(time.Duration(minute) * time.Minute)
	}
	if err := m.Apply(30*time.Minute, Allocation{Type: Large, Count: 6}); err != nil {
		t.Fatal(err)
	}
	for minute := 40; minute <= 60; minute += 10 {
		m.Meter(time.Duration(minute) * time.Minute)
	}
	bill := m.Bill()
	if len(bill.Items) < 2 {
		t.Fatalf("expected at least 2 bill lines, got %+v", bill.Items)
	}
	// The itemized total must track the deployment's own accounting
	// within metering granularity: the switch may be misplaced by up
	// to one 10-minute metering interval, worth at most
	// (10/60)h x (6-2) x $0.34 ~= $0.23.
	if math.Abs(bill.Total()-m.Cost(time.Hour)) > 0.23 {
		t.Errorf("bill total %v vs deployment cost %v", bill.Total(), m.Cost(time.Hour))
	}
	// First line must be the 2-instance period.
	if bill.Items[0].Allocation.Count != 2 {
		t.Errorf("first line allocation=%v", bill.Items[0].Allocation)
	}
	last := bill.Items[len(bill.Items)-1]
	if last.Allocation.Count != 6 {
		t.Errorf("last line allocation=%v", last.Allocation)
	}
	// Re-metering the same instant is a no-op.
	before := len(bill.Items)
	m.Meter(time.Hour)
	if len(m.Bill().Items) != before {
		t.Error("re-metering same time should not add lines")
	}
}

func TestNewMeteredDeploymentInvalid(t *testing.T) {
	if _, err := NewMeteredDeployment(Allocation{}); err == nil {
		t.Error("invalid allocation should error")
	}
}
