package core

import (
	"math/rand"
	"testing"

	"repro/internal/cloud"
	"repro/internal/metrics"
	"repro/internal/ml"
)

// buildTestRepository creates a 2-class repository over two events,
// classes centered at (0,0) and (10,10) in raw space.
func buildTestRepository(t *testing.T) *Repository {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	events := []metrics.Event{metrics.EvFlopsRate, metrics.EvCPUClkUnhalt}
	d := ml.NewDataset([]string{"flops", "cpu"})
	for i := 0; i < 40; i++ {
		_ = d.Add([]float64{rng.NormFloat64() * 0.5, rng.NormFloat64() * 0.5}, 0)
		_ = d.Add([]float64{10 + rng.NormFloat64()*0.5, 10 + rng.NormFloat64()*0.5}, 1)
	}
	std, err := ml.FitStandardizer(d)
	if err != nil {
		t.Fatal(err)
	}
	z := std.TransformDataset(d)
	clf, err := ml.NewC45(z, ml.C45Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Centroids in standardized space.
	km, err := ml.KMeans(z.X, ml.KMeansConfig{K: 2, Rng: rng})
	if err != nil {
		t.Fatal(err)
	}
	radii := []float64{1.0, 1.0}
	repo, err := NewRepository(events, std, clf, km.Centroids, radii, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	return repo
}

func TestRepositoryConstructorValidation(t *testing.T) {
	repo := buildTestRepository(t)
	std := repo.standardizer
	clf := repo.classifier
	cents := repo.centroids
	events := repo.Events()

	if _, err := NewRepository(nil, std, clf, cents, []float64{1, 1}, 0.6); err == nil {
		t.Error("no events should error")
	}
	if _, err := NewRepository(events, nil, clf, cents, []float64{1, 1}, 0.6); err == nil {
		t.Error("nil standardizer should error")
	}
	if _, err := NewRepository(events, std, nil, cents, []float64{1, 1}, 0.6); err == nil {
		t.Error("nil classifier should error")
	}
	if _, err := NewRepository(events, std, clf, cents, []float64{1}, 0.6); err == nil {
		t.Error("mismatched radii should error")
	}
}

func TestRepositoryPutGet(t *testing.T) {
	repo := buildTestRepository(t)
	a := cloud.Allocation{Type: cloud.Large, Count: 4}
	if err := repo.Put(0, 0, a); err != nil {
		t.Fatal(err)
	}
	got, ok := repo.Get(0, 0)
	if !ok || !got.Equal(a) {
		t.Errorf("Get=(%v,%v) want (%v,true)", got, ok, a)
	}
	if _, ok := repo.Get(1, 0); ok {
		t.Error("unpopulated entry should miss")
	}
	if err := repo.Put(5, 0, a); err == nil {
		t.Error("class out of range should error")
	}
	if err := repo.Put(0, -1, a); err == nil {
		t.Error("negative bucket should error")
	}
	if err := repo.Put(0, 0, cloud.Allocation{}); err == nil {
		t.Error("invalid allocation should error")
	}
}

func TestRepositoryClassify(t *testing.T) {
	repo := buildTestRepository(t)
	// Near class 1's raw center.
	sig := &Signature{Events: repo.Events(), Values: []float64{10, 10}}
	class, certainty, unforeseen, err := repo.Classify(sig)
	if err != nil {
		t.Fatal(err)
	}
	if unforeseen {
		t.Error("in-distribution signature flagged unforeseen")
	}
	if certainty <= 0.6 {
		t.Errorf("certainty=%v want > 0.6", certainty)
	}
	_ = class // class index depends on k-means labeling; hit test below pins semantics
}

func TestRepositoryNoveltyDetection(t *testing.T) {
	repo := buildTestRepository(t)
	// Far outside both clusters.
	sig := &Signature{Events: repo.Events(), Values: []float64{100, -50}}
	_, _, unforeseen, err := repo.Classify(sig)
	if err != nil {
		t.Fatal(err)
	}
	if !unforeseen {
		t.Error("far-out signature should be unforeseen")
	}
}

func TestRepositoryLookupHitAndMiss(t *testing.T) {
	repo := buildTestRepository(t)
	sig := &Signature{Events: repo.Events(), Values: []float64{0, 0}}
	class, _, _, err := repo.Classify(sig)
	if err != nil {
		t.Fatal(err)
	}
	a := cloud.Allocation{Type: cloud.Large, Count: 3}
	if err := repo.Put(class, 0, a); err != nil {
		t.Fatal(err)
	}
	res, err := repo.Lookup(sig, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Hit || !res.Allocation.Equal(a) {
		t.Errorf("expected hit with %v, got %+v", a, res)
	}
	// Same class, unpopulated interference bucket: miss but class
	// preserved.
	res, err = repo.Lookup(sig, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Hit {
		t.Error("bucket 2 should miss")
	}
	if res.Class != class {
		t.Errorf("miss should preserve class %d, got %d", class, res.Class)
	}
	if res.Unforeseen {
		t.Error("bucket miss is not unforeseen")
	}
}

func TestRepositoryLookupUnforeseen(t *testing.T) {
	repo := buildTestRepository(t)
	sig := &Signature{Events: repo.Events(), Values: []float64{500, 500}}
	res, err := repo.Lookup(sig, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Unforeseen || res.Hit {
		t.Errorf("expected unforeseen miss, got %+v", res)
	}
	if res.Class != -1 {
		t.Errorf("unforeseen class=%d want -1", res.Class)
	}
}

func TestRepositoryHitRate(t *testing.T) {
	repo := buildTestRepository(t)
	if repo.HitRate() != 0 {
		t.Error("fresh repository should report 0 hit rate")
	}
	sig := &Signature{Events: repo.Events(), Values: []float64{0, 0}}
	class, _, _, _ := repo.Classify(sig)
	_ = repo.Put(class, 0, cloud.Allocation{Type: cloud.Large, Count: 2})
	if _, err := repo.Lookup(sig, 0); err != nil { // hit
		t.Fatal(err)
	}
	if _, err := repo.Lookup(sig, 3); err != nil { // miss
		t.Fatal(err)
	}
	if got := repo.HitRate(); got != 0.5 {
		t.Errorf("HitRate=%v want 0.5", got)
	}
}

func TestRepositorySignatureValidation(t *testing.T) {
	repo := buildTestRepository(t)
	bad := &Signature{Events: repo.Events(), Values: []float64{1}}
	if _, _, _, err := repo.Classify(bad); err == nil {
		t.Error("mismatched signature width should error")
	}
	empty := &Signature{}
	if _, _, _, err := repo.Classify(empty); err == nil {
		t.Error("empty signature should error")
	}
	if _, err := repo.Lookup(bad, 0); err == nil {
		t.Error("lookup with bad signature should error")
	}
}

func TestRepositorySnapshotSorted(t *testing.T) {
	repo := buildTestRepository(t)
	_ = repo.Put(1, 1, cloud.Allocation{Type: cloud.Large, Count: 5})
	_ = repo.Put(0, 2, cloud.Allocation{Type: cloud.Large, Count: 4})
	_ = repo.Put(0, 0, cloud.Allocation{Type: cloud.Large, Count: 2})
	snap := repo.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot size=%d want 3", len(snap))
	}
	if snap[0].Class != 0 || snap[0].Bucket != 0 ||
		snap[1].Class != 0 || snap[1].Bucket != 2 ||
		snap[2].Class != 1 {
		t.Errorf("snapshot not sorted: %+v", snap)
	}
}

func TestBucketForFraction(t *testing.T) {
	cases := []struct {
		fraction float64
		want     int
	}{
		{-0.1, 0}, {0, 0}, {0.01, 1}, {0.05, 1}, {0.07, 2}, {0.10, 2},
		{0.20, 4}, {0.95, 18}, {5, 18},
	}
	for _, tc := range cases {
		if got := BucketForFraction(tc.fraction); got != tc.want {
			t.Errorf("BucketForFraction(%v)=%d want %d", tc.fraction, got, tc.want)
		}
	}
}

func TestBucketFractionRoundTrip(t *testing.T) {
	// The tuning fraction of a bucket must cover every fraction that
	// maps into the bucket.
	for _, f := range []float64{0.01, 0.05, 0.1, 0.15, 0.2, 0.3} {
		b := BucketForFraction(f)
		if got := FractionForBucket(b); got < f-1e-9 {
			t.Errorf("FractionForBucket(%d)=%v does not cover %v", b, got, f)
		}
	}
}

func TestSignatureValidate(t *testing.T) {
	good := &Signature{Events: []metrics.Event{"a"}, Values: []float64{1}}
	if err := good.Validate(); err != nil {
		t.Errorf("valid signature: %v", err)
	}
	if err := (&Signature{}).Validate(); err == nil {
		t.Error("empty signature should fail")
	}
	bad := &Signature{Events: []metrics.Event{"a", "b"}, Values: []float64{1}}
	if err := bad.Validate(); err == nil {
		t.Error("mismatched signature should fail")
	}
}
