package core

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/services"
)

// learnTestRepository builds a small populated repository for tests.
func learnTestRepository(t testing.TB, seed int64) *Repository {
	t.Helper()
	svc := services.NewCassandra()
	rng := rand.New(rand.NewSource(seed))
	prof, err := NewProfiler(svc, rng)
	if err != nil {
		t.Fatal(err)
	}
	tuner, err := NewScaleOutTuner(svc, svc.MaxAllocation().Type, svc.MinInstances, svc.MaxInstances)
	if err != nil {
		t.Fatal(err)
	}
	var workloads []services.Workload
	for c := 100.0; c <= 460; c += 30 {
		workloads = append(workloads, services.Workload{Clients: c, Mix: svc.DefaultMix()})
	}
	repo, _, err := Learn(LearnConfig{
		Profiler:  prof,
		Tuner:     tuner,
		Workloads: workloads,
		Rng:       rng,
	})
	if err != nil {
		t.Fatal(err)
	}
	return repo
}

func TestHandleSwapVersions(t *testing.T) {
	repo := learnTestRepository(t, 1)
	if _, err := NewHandle(nil); err == nil {
		t.Error("nil repository should be rejected")
	}
	h, err := NewHandle(repo)
	if err != nil {
		t.Fatal(err)
	}
	cur := h.Current()
	if cur.Repo != repo || cur.Version != 1 {
		t.Fatalf("fresh handle: %+v", cur)
	}
	if _, err := h.Swap(nil); err == nil {
		t.Error("nil swap should be rejected")
	}
	next := learnTestRepository(t, 2)
	v, err := h.Swap(next)
	if err != nil {
		t.Fatal(err)
	}
	if v != 2 || h.Version() != 2 || h.Current().Repo != next {
		t.Fatalf("after swap: v=%d current=%+v", v, h.Current())
	}
	// The old snapshot is untouched — in-flight readers holding it
	// keep a consistent view.
	if cur.Repo != repo || cur.Version != 1 {
		t.Fatalf("old snapshot mutated: %+v", cur)
	}
}

// TestHandleConcurrentSwap hammers Swap from many goroutines and
// checks versions stay dense and monotonic (run with -race).
func TestHandleConcurrentSwap(t *testing.T) {
	repo := learnTestRepository(t, 3)
	h, err := NewHandle(repo)
	if err != nil {
		t.Fatal(err)
	}
	const swappers, swapsEach = 8, 25
	var wg sync.WaitGroup
	for g := 0; g < swappers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < swapsEach; i++ {
				if _, err := h.Swap(repo); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got, want := h.Version(), uint64(1+swappers*swapsEach); got != want {
		t.Errorf("final version %d, want %d (every swap must claim a distinct version)", got, want)
	}
}

func TestRelearnFromSignatures(t *testing.T) {
	repo := learnTestRepository(t, 4)
	events := repo.EventsRef()

	// A drifted corpus: two well-separated blobs in signature space.
	rng := rand.New(rand.NewSource(9))
	var rows [][]float64
	for i := 0; i < 60; i++ {
		base := 10.0
		if i%2 == 1 {
			base = 200.0
		}
		row := make([]float64, len(events))
		for j := range row {
			row[j] = base * (1 + 0.05*rng.NormFloat64()) * float64(j+1)
		}
		rows = append(rows, row)
	}
	fresh, err := RelearnFromSignatures(events, rows, OnlineRelearnConfig{Rng: rng})
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Classes() < 2 {
		t.Errorf("two-blob corpus should yield >= 2 classes, got %d", fresh.Classes())
	}
	if fresh.Len() != 0 {
		t.Errorf("fresh repository should start with no allocation entries, has %d", fresh.Len())
	}
	// Training rows classify as foreseen; a signature far outside the
	// corpus is unforeseen.
	sig := &Signature{Events: events, Values: rows[0]}
	if _, _, unforeseen, err := fresh.Classify(sig); err != nil || unforeseen {
		t.Errorf("training row should be foreseen (unforeseen=%v err=%v)", unforeseen, err)
	}
	far := make([]float64, len(events))
	for j := range far {
		far[j] = 1e6
	}
	if _, _, unforeseen, err := fresh.Classify(&Signature{Events: events, Values: far}); err != nil || !unforeseen {
		t.Errorf("distant signature should be unforeseen (unforeseen=%v err=%v)", unforeseen, err)
	}

	// Determinism: with the Rng in the same state, the rebuild yields
	// the same class count. (The first call above consumed rng, so
	// replay it from the same point.)
	replay := rand.New(rand.NewSource(9))
	for i := 0; i < 60*len(events); i++ {
		replay.NormFloat64() // advance past the corpus draws
	}
	again, err := RelearnFromSignatures(events, rows, OnlineRelearnConfig{Rng: replay})
	if err != nil {
		t.Fatal(err)
	}
	if again.Classes() != fresh.Classes() {
		t.Errorf("same-seed relearn chose %d classes, first run %d", again.Classes(), fresh.Classes())
	}

	// Validation paths.
	if _, err := RelearnFromSignatures(nil, rows, OnlineRelearnConfig{Rng: rng}); err == nil {
		t.Error("empty events should be rejected")
	}
	if _, err := RelearnFromSignatures(events, rows, OnlineRelearnConfig{}); err == nil {
		t.Error("missing Rng should be rejected")
	}
	if _, err := RelearnFromSignatures(events, rows[:2], OnlineRelearnConfig{Rng: rng}); err == nil {
		t.Error("tiny corpus should be rejected")
	}
	bad := make([][]float64, 4)
	for i := range bad {
		bad[i] = make([]float64, len(events)+1)
	}
	if _, err := RelearnFromSignatures(events, bad, OnlineRelearnConfig{Rng: rng}); err == nil {
		t.Error("width-mismatched rows should be rejected")
	}
}
