package core

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/cloud"
	"repro/internal/metrics"
	"repro/internal/services"
	"repro/internal/trace"
)

// cassandraPeakClients scales traces so peak load saturates the
// full-capacity deployment at the SLO edge: 10 large x 67 clients/unit
// x 0.75 utilization ~= 500 clients.
const cassandraPeakClients = 500

func learnMessengerDay(t *testing.T, seed int64) (*Repository, *LearnReport, *Profiler, Tuner) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	svc := services.NewCassandra()
	tr := trace.Messenger(trace.SynthConfig{Rng: rng}).ScaleTo(cassandraPeakClients)
	day0, err := tr.Day(0)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := NewProfiler(svc, rng)
	if err != nil {
		t.Fatal(err)
	}
	tuner, err := NewScaleOutTuner(svc, cloud.Large, svc.MinInstances, svc.MaxInstances)
	if err != nil {
		t.Fatal(err)
	}
	repo, report, err := Learn(LearnConfig{
		Profiler:  prof,
		Tuner:     tuner,
		Workloads: WorkloadsFromTrace(day0, svc.DefaultMix()),
		Rng:       rng,
	})
	if err != nil {
		t.Fatal(err)
	}
	return repo, report, prof, tuner
}

func TestLearnProducesFewClasses(t *testing.T) {
	_, report, _, _ := learnMessengerDay(t, 1)
	if report.NumWorkloads != 24 {
		t.Errorf("NumWorkloads=%d want 24", report.NumWorkloads)
	}
	// Paper: 24 hourly workloads collapse to ~4 classes; accept the
	// plausible band 3-6.
	if report.Classes < 3 || report.Classes > 6 {
		t.Errorf("Classes=%d want 3..6", report.Classes)
	}
	if len(report.WorkloadClass) != 24 {
		t.Fatalf("WorkloadClass has %d entries", len(report.WorkloadClass))
	}
	if len(report.Allocations) != report.Classes {
		t.Fatalf("Allocations has %d entries want %d", len(report.Allocations), report.Classes)
	}
}

func TestLearnSignatureIsInformative(t *testing.T) {
	repo, report, _, _ := learnMessengerDay(t, 2)
	if len(report.SignatureEvents) == 0 {
		t.Fatal("empty signature")
	}
	// The signature must include at least one genuinely
	// volume-sensitive Cassandra event and no more than a dozen.
	informative := map[metrics.Event]bool{
		metrics.EvFlopsRate: true, metrics.EvCPUClkUnhalt: true,
		metrics.EvL2St: true, metrics.EvLoadBlock: true,
		metrics.EvStoreBlock: true, metrics.EvPageWalks: true,
		metrics.EvL2Ads: true, metrics.EvL2RejectBusq: true,
		metrics.EvBusqEmpty: true, metrics.EvL1DRepl: true,
		metrics.EvDTLBMiss: true,
		metrics.EvXenCPU:   true, metrics.EvXenMem: true,
		metrics.EvXenNetTx: true, metrics.EvXenNetRx: true,
		metrics.EvXenVBDRd: true, metrics.EvXenVBDWr: true,
	}
	found := 0
	for _, ev := range report.SignatureEvents {
		if informative[ev] {
			found++
		}
	}
	if found == 0 {
		t.Errorf("signature %v contains no informative events", report.SignatureEvents)
	}
	if len(report.SignatureEvents) > 12 {
		t.Errorf("signature too wide: %d events", len(report.SignatureEvents))
	}
	if repo.Classes() != report.Classes {
		t.Errorf("repo classes %d != report classes %d", repo.Classes(), report.Classes)
	}
}

func TestLearnClassifierAccuracy(t *testing.T) {
	_, report, _, _ := learnMessengerDay(t, 3)
	if report.ClassifierAccuracy < 0.85 {
		t.Errorf("classifier accuracy=%v want >= 0.85", report.ClassifierAccuracy)
	}
}

func TestLearnTuningAmortization(t *testing.T) {
	_, report, _, _ := learnMessengerDay(t, 4)
	// Tuning runs once per class, not per workload: total tuning
	// time must be far below 24 full sweeps.
	fullSweep := 9 * 3 * time.Minute
	if report.TuningTime >= time.Duration(report.NumWorkloads)*fullSweep {
		t.Errorf("tuning not amortized: %v", report.TuningTime)
	}
	if report.TuningTime <= 0 {
		t.Error("tuning time must be positive")
	}
}

func TestLearnAllocationsCoverRange(t *testing.T) {
	repo, report, _, _ := learnMessengerDay(t, 5)
	// Every class must have a bucket-0 allocation.
	for c := 0; c < report.Classes; c++ {
		if _, ok := repo.Get(c, 0); !ok {
			t.Errorf("class %d missing baseline allocation", c)
		}
	}
	// Night and peak classes must get different allocations: min and
	// max allocated counts should differ by at least 3 instances.
	minC, maxC := 100, 0
	for _, a := range report.Allocations {
		if a.Count < minC {
			minC = a.Count
		}
		if a.Count > maxC {
			maxC = a.Count
		}
	}
	if maxC-minC < 3 {
		t.Errorf("allocations too uniform: min=%d max=%d", minC, maxC)
	}
}

func TestLearnClassifyTrainedWorkloads(t *testing.T) {
	repo, report, prof, _ := learnMessengerDay(t, 6)
	// Re-profiling the learning workloads must classify into the
	// learned classes without novelty rejections.
	rng := rand.New(rand.NewSource(99))
	svc := services.NewCassandra()
	tr := trace.Messenger(trace.SynthConfig{Rng: rng}).ScaleTo(cassandraPeakClients)
	day0, _ := tr.Day(0)
	workloads := WorkloadsFromTrace(day0, svc.DefaultMix())
	misses := 0
	for i, w := range workloads {
		sig, err := prof.Profile(w, repo.Events())
		if err != nil {
			t.Fatal(err)
		}
		class, _, unforeseen, err := repo.Classify(sig)
		if err != nil {
			t.Fatal(err)
		}
		if unforeseen {
			misses++
			continue
		}
		if class != report.WorkloadClass[i] {
			// Different jitter can flip boundary hours between
			// adjacent classes; only count them.
			misses++
		}
	}
	if misses > 6 {
		t.Errorf("%d/24 re-profiled workloads misclassified", misses)
	}
}

func TestLearnValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	svc := services.NewCassandra()
	prof, _ := NewProfiler(svc, rng)
	tuner, _ := NewScaleOutTuner(svc, cloud.Large, 2, 10)
	w := []services.Workload{{Clients: 100, Mix: svc.DefaultMix()}}

	if _, _, err := Learn(LearnConfig{Tuner: tuner, Workloads: w, Rng: rng}); err == nil {
		t.Error("missing profiler should error")
	}
	if _, _, err := Learn(LearnConfig{Profiler: prof, Workloads: w, Rng: rng}); err == nil {
		t.Error("missing tuner should error")
	}
	if _, _, err := Learn(LearnConfig{Profiler: prof, Tuner: tuner, Rng: rng}); err == nil {
		t.Error("no workloads should error")
	}
	if _, _, err := Learn(LearnConfig{Profiler: prof, Tuner: tuner, Workloads: w}); err == nil {
		t.Error("missing rng should error")
	}
	if _, _, err := Learn(LearnConfig{Profiler: prof, Tuner: tuner, Workloads: w, Rng: rng,
		Classifier: "svm"}); err == nil {
		t.Error("unknown classifier should error")
	}
}

func TestLearnBayesClassifier(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	svc := services.NewCassandra()
	tr := trace.Messenger(trace.SynthConfig{Rng: rng}).ScaleTo(cassandraPeakClients)
	day0, _ := tr.Day(0)
	prof, _ := NewProfiler(svc, rng)
	tuner, _ := NewScaleOutTuner(svc, cloud.Large, 2, 10)
	_, report, err := Learn(LearnConfig{
		Profiler:   prof,
		Tuner:      tuner,
		Workloads:  WorkloadsFromTrace(day0, svc.DefaultMix()),
		Classifier: "bayes",
		Rng:        rng,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.ClassifierAccuracy < 0.8 {
		t.Errorf("bayes accuracy=%v want >= 0.8", report.ClassifierAccuracy)
	}
}

func TestHotMailLearnsFewerClassesThanMessenger(t *testing.T) {
	learn := func(build func(trace.SynthConfig) *trace.Trace, seed int64) int {
		rng := rand.New(rand.NewSource(seed))
		svc := services.NewCassandra()
		tr := build(trace.SynthConfig{Rng: rng}).ScaleTo(cassandraPeakClients)
		day0, err := tr.Day(0)
		if err != nil {
			t.Fatal(err)
		}
		prof, _ := NewProfiler(svc, rng)
		tuner, _ := NewScaleOutTuner(svc, cloud.Large, 2, 10)
		_, report, err := Learn(LearnConfig{
			Profiler:  prof,
			Tuner:     tuner,
			Workloads: WorkloadsFromTrace(day0, svc.DefaultMix()),
			Rng:       rng,
		})
		if err != nil {
			t.Fatal(err)
		}
		return report.Classes
	}
	hot := learn(trace.HotMail, 10)
	msn := learn(trace.Messenger, 10)
	// Paper: 3 classes for HotMail vs 4 for Messenger. Exact counts
	// depend on jitter; require hotmail <= messenger.
	if hot > msn {
		t.Errorf("hotmail classes=%d should be <= messenger=%d", hot, msn)
	}
}

func TestWorkloadsFromTrace(t *testing.T) {
	tr := &trace.Trace{Step: time.Hour, Loads: []float64{10, 20}}
	mix := services.Mix{Name: "m"}
	ws := WorkloadsFromTrace(tr, mix)
	if len(ws) != 2 || ws[0].Clients != 10 || ws[1].Clients != 20 {
		t.Errorf("WorkloadsFromTrace=%v", ws)
	}
	if ws[0].Mix.Name != "m" {
		t.Error("mix not propagated")
	}
}
