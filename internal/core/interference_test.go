package core

import (
	"math"
	"testing"

	"repro/internal/services"
)

func TestInterferenceIndexLatency(t *testing.T) {
	prod := services.Perf{LatencyMs: 90}
	iso := services.Perf{LatencyMs: 60}
	if got := InterferenceIndex(prod, iso); math.Abs(got-1.5) > 1e-9 {
		t.Errorf("index=%v want 1.5", got)
	}
	// Production faster than isolation: clamp to 1 (no interference).
	if got := InterferenceIndex(iso, prod); got != 1 {
		t.Errorf("reverse index=%v want 1", got)
	}
}

func TestInterferenceIndexQoS(t *testing.T) {
	prod := services.Perf{QoSPercent: 80}
	iso := services.Perf{QoSPercent: 100}
	if got := InterferenceIndex(prod, iso); math.Abs(got-1.25) > 1e-9 {
		t.Errorf("QoS index=%v want 1.25", got)
	}
}

func TestInterferenceIndexDegenerate(t *testing.T) {
	if got := InterferenceIndex(services.Perf{}, services.Perf{}); got != 1 {
		t.Errorf("degenerate index=%v want 1", got)
	}
}

func TestEstimateInterferenceFractionRoundTrip(t *testing.T) {
	// Forward: with true fraction f, rhoProd = rhoIso/(1-f) and the
	// M/M/1 index is (1-rhoIso)/(1-rhoProd). The estimator must
	// recover f.
	for _, f := range []float64{0.1, 0.2, 0.3} {
		for _, rhoIso := range []float64{0.5, 0.6, 0.75} {
			rhoProd := rhoIso / (1 - f)
			if rhoProd >= 1 {
				continue
			}
			index := (1 - rhoIso) / (1 - rhoProd)
			got := EstimateInterferenceFraction(index, rhoIso)
			if math.Abs(got-f) > 1e-9 {
				t.Errorf("f=%v rhoIso=%v: estimated %v", f, rhoIso, got)
			}
		}
	}
}

func TestEstimateInterferenceFractionGuards(t *testing.T) {
	if got := EstimateInterferenceFraction(0.9, 0.5); got != 0 {
		t.Errorf("index<1 should give 0, got %v", got)
	}
	if got := EstimateInterferenceFraction(1.5, 0); got != 0 {
		t.Errorf("rhoIso=0 should give 0, got %v", got)
	}
	if got := EstimateInterferenceFraction(1.5, 1); got != 0 {
		t.Errorf("rhoIso=1 should give 0, got %v", got)
	}
	// Huge index: clamped to 0.9.
	if got := EstimateInterferenceFraction(1000, 0.9); got > 0.9 {
		t.Errorf("fraction should be clamped at 0.9, got %v", got)
	}
}

func TestFractionForBucket(t *testing.T) {
	if got := FractionForBucket(0); got != 0 {
		t.Errorf("bucket 0 fraction=%v want 0", got)
	}
	prev := 0.0
	for b := 1; b <= 4; b++ {
		f := FractionForBucket(b)
		if f <= prev {
			t.Errorf("bucket %d fraction %v not increasing (prev %v)", b, f, prev)
		}
		if f >= 1 {
			t.Errorf("bucket %d fraction %v out of range", b, f)
		}
		prev = f
	}
}
