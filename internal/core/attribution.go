package core

import (
	"errors"
	"sort"

	"repro/internal/metrics"
)

// Interference attribution realizes §3.6's forward-looking mechanism:
// "Assuming that the cloud provider collects the low-level metrics
// from its VM instances, it might compare the metric values imposed by
// the same workload class over time to reveal which resource is
// primarily affected by the interference (e.g., cache, I/O)."

// Resource is a coarse hardware subsystem.
type Resource string

// The attribution subsystems.
const (
	ResourceCPU     Resource = "cpu"
	ResourceCache   Resource = "cache"
	ResourceMemory  Resource = "memory"
	ResourceIO      Resource = "io"
	ResourceNetwork Resource = "network"
	ResourceOther   Resource = "other"
)

// eventResource maps catalog events to the subsystem they monitor.
var eventResource = map[metrics.Event]Resource{
	metrics.EvCPUClkUnhalt:  ResourceCPU,
	metrics.EvInstRetired:   ResourceCPU,
	metrics.EvBrInstRetired: ResourceCPU,
	metrics.EvBrMispredict:  ResourceCPU,
	metrics.EvFlopsRate:     ResourceCPU,
	metrics.EvXenCPU:        ResourceCPU,

	metrics.EvL2Ads:        ResourceCache,
	metrics.EvL2RejectBusq: ResourceCache,
	metrics.EvL2St:         ResourceCache,
	metrics.EvL2Lines:      ResourceCache,
	metrics.EvL1DRepl:      ResourceCache,
	metrics.EvBusqEmpty:    ResourceCache,

	metrics.EvLoadBlock:  ResourceMemory,
	metrics.EvStoreBlock: ResourceMemory,
	metrics.EvPageWalks:  ResourceMemory,
	metrics.EvDTLBMiss:   ResourceMemory,
	metrics.EvITLBMiss:   ResourceMemory,
	metrics.EvXenMem:     ResourceMemory,

	metrics.EvXenVBDRd: ResourceIO,
	metrics.EvXenVBDWr: ResourceIO,

	metrics.EvXenNetTx: ResourceNetwork,
	metrics.EvXenNetRx: ResourceNetwork,
}

// ResourceOf returns the subsystem an event monitors (ResourceOther
// for synthetic filler events).
func ResourceOf(ev metrics.Event) Resource {
	if r, ok := eventResource[ev]; ok {
		return r
	}
	return ResourceOther
}

// ResourceScore is one subsystem's attribution result.
type ResourceScore struct {
	Resource Resource
	// Deviation is the mean relative deviation of the subsystem's
	// counters between the reference and observed signatures; the
	// subsystem with the largest deviation is the prime suspect.
	Deviation float64
	// Events is how many counters contributed.
	Events int
}

// AttributeInterference compares a reference signature (the same
// workload class, recorded in isolation or at an earlier healthy
// point) against the currently observed one and ranks subsystems by
// relative deviation. Both signatures must cover the same events in
// the same order.
func AttributeInterference(reference, observed *Signature) ([]ResourceScore, error) {
	if err := reference.Validate(); err != nil {
		return nil, err
	}
	if err := observed.Validate(); err != nil {
		return nil, err
	}
	if len(reference.Events) != len(observed.Events) {
		return nil, errors.New("core: signatures cover different events")
	}
	type acc struct {
		sum float64
		n   int
	}
	byResource := map[Resource]*acc{}
	for i, ev := range reference.Events {
		if observed.Events[i] != ev {
			return nil, errors.New("core: signature event order differs")
		}
		ref := reference.Values[i]
		if ref == 0 {
			continue // cannot compute a relative deviation
		}
		dev := (observed.Values[i] - ref) / ref
		if dev < 0 {
			dev = -dev
		}
		r := ResourceOf(ev)
		a := byResource[r]
		if a == nil {
			a = &acc{}
			byResource[r] = a
		}
		a.sum += dev
		a.n++
	}
	out := make([]ResourceScore, 0, len(byResource))
	for r, a := range byResource {
		out = append(out, ResourceScore{Resource: r, Deviation: a.sum / float64(a.n), Events: a.n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Deviation != out[j].Deviation {
			return out[i].Deviation > out[j].Deviation
		}
		return out[i].Resource < out[j].Resource
	})
	return out, nil
}
