package core

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/metrics"
	"repro/internal/ml"
)

// Online re-learning — the server-side analogue of the §3.5 staleness
// loop. The sim-embedded Relearner re-runs the whole learning phase
// (profiling, CFS, tuning) because it owns a profiling environment;
// a network decision service owns only the signatures its clients
// send. RelearnFromSignatures therefore rebuilds the parts of the
// repository that go stale — the clustering, novelty radii, and
// runtime classifier — directly from recently observed signatures,
// keeping the signature metric tuple fixed. Allocation entries start
// empty: class identities change with the clustering, and the DejaVu
// protocol already repopulates entries on misses (clients tune and
// Put, exactly like a fresh learning day).

// OnlineRelearnConfig parameterizes RelearnFromSignatures. The zero
// value of every field except Rng picks the Learn defaults.
type OnlineRelearnConfig struct {
	// MinK and MaxK bound the cluster count search (defaults 2, 6).
	MinK, MaxK int
	// Classifier is "c45" (default) or "bayes".
	Classifier string
	// CertaintyThreshold is the cache-hit confidence floor
	// (default 0.6).
	CertaintyThreshold float64
	// NoveltyTolerance inflates the per-class training radius
	// (default 2.0).
	NoveltyTolerance float64
	// MinNoveltyRadius floors the radius (default 1.0).
	MinNoveltyRadius float64
	// Rng drives clustering restarts; required. Only derived per-run
	// seeds are consumed, so results are Workers-independent.
	Rng *rand.Rand
	// Workers bounds the clustering fan-out on the shared
	// internal/parallel pool; 0 means GOMAXPROCS.
	Workers int
}

// RelearnFromSignatures builds a fresh repository over the given
// signature metric tuple from recently observed signature rows
// (len(events) values each, profiler-normalized like Signature.Values).
// It runs entirely off any decision path: callers build the new
// repository in the background and publish it through Handle.Swap.
func RelearnFromSignatures(events []metrics.Event, rows [][]float64, cfg OnlineRelearnConfig) (*Repository, error) {
	if len(events) == 0 {
		return nil, errors.New("core: relearn needs signature events")
	}
	if cfg.Rng == nil {
		return nil, errors.New("core: relearn needs a Rng")
	}
	if cfg.MinK <= 0 {
		cfg.MinK = 2
	}
	if cfg.MaxK <= 0 {
		cfg.MaxK = 6
	}
	if cfg.Classifier == "" {
		cfg.Classifier = "c45"
	}
	if cfg.Classifier != "c45" && cfg.Classifier != "bayes" {
		return nil, fmt.Errorf("core: unknown classifier %q", cfg.Classifier)
	}
	if cfg.CertaintyThreshold == 0 {
		cfg.CertaintyThreshold = 0.6
	}
	if cfg.NoveltyTolerance == 0 {
		cfg.NoveltyTolerance = 2.0
	}
	if cfg.MinNoveltyRadius == 0 {
		cfg.MinNoveltyRadius = 1.0
	}
	if len(rows) < 2*cfg.MinK {
		return nil, fmt.Errorf("core: %d signatures are too few to re-cluster (need >= %d)", len(rows), 2*cfg.MinK)
	}

	ds := ml.NewDataset(eventNames(events))
	for i, row := range rows {
		if err := ds.Add(row, 0); err != nil {
			return nil, fmt.Errorf("core: relearn row %d: %w", i, err)
		}
	}
	std, err := ml.FitStandardizer(ds)
	if err != nil {
		return nil, err
	}
	dsZ := std.TransformDataset(ds)
	clusters, err := ml.KMeansAuto(dsZ.X, cfg.MinK, cfg.MaxK, ml.KMeansConfig{Rng: cfg.Rng, Workers: cfg.Workers})
	if err != nil {
		return nil, fmt.Errorf("core: re-clustering: %w", err)
	}
	for i := range dsZ.Y {
		dsZ.Y[i] = clusters.Assignments[i]
	}

	radii := make([]float64, clusters.K)
	for i, row := range dsZ.X {
		c := clusters.Assignments[i]
		if d := ml.EuclideanDistance(row, clusters.Centroids[c]); d > radii[c] {
			radii[c] = d
		}
	}
	for c := range radii {
		radii[c] *= cfg.NoveltyTolerance
		if radii[c] < cfg.MinNoveltyRadius {
			radii[c] = cfg.MinNoveltyRadius
		}
	}

	clf, err := trainFunc(cfg.Classifier)(dsZ)
	if err != nil {
		return nil, fmt.Errorf("core: training classifier: %w", err)
	}
	return NewRepository(events, std, clf, clusters.Centroids, radii, cfg.CertaintyThreshold)
}
