package core

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/cloud"
	"repro/internal/services"
)

// Tuner determines the "sufficient, but not wasteful" resource
// allocation for a workload (paper §3.4). The choice of tuning
// mechanism is orthogonal to DejaVu; like the paper's evaluation, this
// repository ships a linear-search tuner that replays the workload
// against increasing allocations and keeps the first one meeting the
// SLO.
type Tuner interface {
	// Tune returns the preferred allocation for the workload under
	// the given co-located interference fraction (0 = isolation).
	Tune(w services.Workload, interference float64) (cloud.Allocation, error)
	// Duration reports how long one tuning invocation takes — the
	// cost DejaVu's cache amortizes away.
	Duration() time.Duration
}

// LinearSearchTuner is the paper's evaluation tuner: "we replay a
// sequence of runs of the workload, each time with an increasing
// amount of virtual resources. We then choose the minimal set of
// resources that fulfill the target SLO."
type LinearSearchTuner struct {
	// Service provides the sandboxed experiment environment.
	Service services.Service
	// Candidates is the allocation search space in ascending
	// capacity order (e.g. 2..10 large instances for scale-out, or
	// {5 x large, 5 x xlarge} for scale-up).
	Candidates []cloud.Allocation
	// Margin tightens the SLO during tuning so the deployed
	// allocation has headroom for transients (default 0.9: target
	// 90% of the latency budget).
	Margin float64
	// TrialDuration is the sandboxed experiment length per
	// candidate; the paper cites roughly minutes per experiment for
	// state-of-the-art experimental tuning (default 3 minutes).
	TrialDuration time.Duration

	// trials counts the experiments run by the last Tune call.
	trials int
}

// NewScaleOutTuner builds a linear-search tuner over instance counts
// min..max of the given type (the Cassandra scale-out case study).
func NewScaleOutTuner(svc services.Service, typ cloud.InstanceType, min, max int) (*LinearSearchTuner, error) {
	if min <= 0 || max < min {
		return nil, fmt.Errorf("core: bad scale-out range [%d, %d]", min, max)
	}
	var cands []cloud.Allocation
	for n := min; n <= max; n++ {
		cands = append(cands, cloud.Allocation{Type: typ, Count: n})
	}
	return newLinearTuner(svc, cands)
}

// NewScaleUpTuner builds a linear-search tuner over instance types for
// a fixed count (the SPECweb scale-up case study: 5 large vs 5
// extra-large).
func NewScaleUpTuner(svc services.Service, count int, types []cloud.InstanceType) (*LinearSearchTuner, error) {
	if count <= 0 || len(types) == 0 {
		return nil, errors.New("core: scale-up tuner needs a count and types")
	}
	var cands []cloud.Allocation
	for _, t := range types {
		cands = append(cands, cloud.Allocation{Type: t, Count: count})
	}
	return newLinearTuner(svc, cands)
}

func newLinearTuner(svc services.Service, cands []cloud.Allocation) (*LinearSearchTuner, error) {
	if svc == nil {
		return nil, errors.New("core: nil service")
	}
	for i := 1; i < len(cands); i++ {
		if cands[i].Capacity() < cands[i-1].Capacity() {
			return nil, errors.New("core: candidates must be in ascending capacity order")
		}
	}
	return &LinearSearchTuner{
		Service:       svc,
		Candidates:    cands,
		Margin:        0.9,
		TrialDuration: 3 * time.Minute,
	}, nil
}

// tightened returns the SLO with the tuning safety margin applied.
func tightened(slo services.SLO, margin float64) services.SLO {
	out := slo
	if out.MaxLatencyMs > 0 {
		out.MaxLatencyMs *= margin
	}
	if out.MinQoSPercent > 0 {
		// Require proportionally more of the remaining headroom:
		// 95% floor with margin 0.9 becomes 95.5%.
		out.MinQoSPercent += (100 - out.MinQoSPercent) * (1 - margin)
	}
	return out
}

// Tune implements Tuner.
func (t *LinearSearchTuner) Tune(w services.Workload, interference float64) (cloud.Allocation, error) {
	if len(t.Candidates) == 0 {
		return cloud.Allocation{}, errors.New("core: tuner has no candidates")
	}
	if interference < 0 || interference >= 1 {
		return cloud.Allocation{}, fmt.Errorf("core: interference %v out of [0,1)", interference)
	}
	margin := t.Margin
	if margin <= 0 || margin > 1 {
		margin = 0.9
	}
	slo := tightened(t.Service.SLO(), margin)
	t.trials = 0
	for _, cand := range t.Candidates {
		t.trials++
		capacity := cand.Capacity() * (1 - interference)
		perf := t.Service.Perf(w, capacity)
		if slo.Met(perf) {
			return cand, nil
		}
	}
	// Nothing meets the SLO: return the largest candidate, mirroring
	// the paper's full-capacity fallback.
	t.trials = len(t.Candidates)
	return t.Candidates[len(t.Candidates)-1], nil
}

// Duration implements Tuner: trials x trial duration for the most
// recent Tune call (a full sweep when none has run yet).
func (t *LinearSearchTuner) Duration() time.Duration {
	trials := t.trials
	if trials == 0 {
		trials = len(t.Candidates)
	}
	return time.Duration(trials) * t.TrialDuration
}

var _ Tuner = (*LinearSearchTuner)(nil)
