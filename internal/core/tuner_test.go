package core

import (
	"testing"
	"time"

	"repro/internal/cloud"
	"repro/internal/services"
)

func TestScaleOutTunerFindsMinimal(t *testing.T) {
	svc := services.NewCassandra()
	tuner, err := NewScaleOutTuner(svc, cloud.Large, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	// 300 clients: SLO (60 ms, margin 0.9 -> 54 ms) needs
	// rho <= 1-15/54 = 0.722; capacity >= 300/(0.722*67) = 6.2 -> 7.
	w := services.Workload{Clients: 300, Mix: svc.DefaultMix()}
	alloc, err := tuner.Tune(w, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !svc.SLO().Met(svc.Perf(w, alloc.Capacity())) {
		t.Errorf("tuned allocation %v misses SLO", alloc)
	}
	// Minimality: one instance less must violate the margin SLO.
	smaller := cloud.Allocation{Type: cloud.Large, Count: alloc.Count - 1}
	if smaller.Count >= 2 {
		slo := tightened(svc.SLO(), tuner.Margin)
		if slo.Met(svc.Perf(w, smaller.Capacity())) {
			t.Errorf("allocation %v not minimal: %v also fits", alloc, smaller)
		}
	}
}

func TestScaleOutTunerMonotoneInLoad(t *testing.T) {
	svc := services.NewCassandra()
	tuner, _ := NewScaleOutTuner(svc, cloud.Large, 2, 10)
	prev := 0
	for clients := 50.0; clients <= 500; clients += 50 {
		alloc, err := tuner.Tune(services.Workload{Clients: clients, Mix: svc.DefaultMix()}, 0)
		if err != nil {
			t.Fatal(err)
		}
		if alloc.Count < prev {
			t.Errorf("allocation shrank with load at %v clients", clients)
		}
		prev = alloc.Count
	}
}

func TestTunerInterferenceNeedsMore(t *testing.T) {
	svc := services.NewCassandra()
	tuner, _ := NewScaleOutTuner(svc, cloud.Large, 2, 10)
	w := services.Workload{Clients: 300, Mix: svc.DefaultMix()}
	clean, err := tuner.Tune(w, 0)
	if err != nil {
		t.Fatal(err)
	}
	dirty, err := tuner.Tune(w, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if dirty.Count <= clean.Count {
		t.Errorf("20%% interference should need more instances: %v vs %v", dirty, clean)
	}
}

func TestTunerUnmeetableReturnsMax(t *testing.T) {
	svc := services.NewCassandra()
	tuner, _ := NewScaleOutTuner(svc, cloud.Large, 2, 10)
	alloc, err := tuner.Tune(services.Workload{Clients: 1e6, Mix: svc.DefaultMix()}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if alloc.Count != 10 {
		t.Errorf("unmeetable workload should return max, got %v", alloc)
	}
}

func TestTunerInvalidInterference(t *testing.T) {
	svc := services.NewCassandra()
	tuner, _ := NewScaleOutTuner(svc, cloud.Large, 2, 10)
	w := services.Workload{Clients: 100, Mix: svc.DefaultMix()}
	if _, err := tuner.Tune(w, -0.1); err == nil {
		t.Error("negative interference should error")
	}
	if _, err := tuner.Tune(w, 1.0); err == nil {
		t.Error("interference 1.0 should error")
	}
}

func TestScaleUpTuner(t *testing.T) {
	svc := services.NewSPECWeb()
	tuner, err := NewScaleUpTuner(svc, 5, []cloud.InstanceType{cloud.Large, cloud.XLarge})
	if err != nil {
		t.Fatal(err)
	}
	low := services.Workload{Clients: 100, Mix: svc.DefaultMix()}
	alloc, err := tuner.Tune(low, 0)
	if err != nil {
		t.Fatal(err)
	}
	if alloc.Type.Name != "large" {
		t.Errorf("low load should fit on large: %v", alloc)
	}
	high := services.Workload{Clients: 450, Mix: svc.DefaultMix()}
	alloc, err = tuner.Tune(high, 0)
	if err != nil {
		t.Fatal(err)
	}
	if alloc.Type.Name != "xlarge" {
		t.Errorf("high load should need xlarge: %v", alloc)
	}
}

func TestTunerDuration(t *testing.T) {
	svc := services.NewCassandra()
	tuner, _ := NewScaleOutTuner(svc, cloud.Large, 2, 10)
	// Before any Tune: full sweep estimate.
	if got := tuner.Duration(); got != 9*3*time.Minute {
		t.Errorf("initial Duration=%v want 27m", got)
	}
	// Light workload stops the search early; duration shrinks.
	if _, err := tuner.Tune(services.Workload{Clients: 50, Mix: svc.DefaultMix()}, 0); err != nil {
		t.Fatal(err)
	}
	if got := tuner.Duration(); got != 3*time.Minute {
		t.Errorf("after trivial tune Duration=%v want 3m (one trial)", got)
	}
}

func TestTunerConstructorsValidate(t *testing.T) {
	svc := services.NewCassandra()
	if _, err := NewScaleOutTuner(svc, cloud.Large, 0, 5); err == nil {
		t.Error("min=0 should error")
	}
	if _, err := NewScaleOutTuner(svc, cloud.Large, 5, 2); err == nil {
		t.Error("max<min should error")
	}
	if _, err := NewScaleOutTuner(nil, cloud.Large, 2, 5); err == nil {
		t.Error("nil service should error")
	}
	if _, err := NewScaleUpTuner(svc, 0, []cloud.InstanceType{cloud.Large}); err == nil {
		t.Error("count=0 should error")
	}
	if _, err := NewScaleUpTuner(svc, 5, nil); err == nil {
		t.Error("no types should error")
	}
	// Descending candidates rejected.
	if _, err := NewScaleUpTuner(svc, 5, []cloud.InstanceType{cloud.XLarge, cloud.Large}); err == nil {
		t.Error("descending candidates should error")
	}
}

func TestTightenedSLO(t *testing.T) {
	lat := tightened(services.SLO{MaxLatencyMs: 100}, 0.9)
	if lat.MaxLatencyMs != 90 {
		t.Errorf("tightened latency=%v want 90", lat.MaxLatencyMs)
	}
	qos := tightened(services.SLO{MinQoSPercent: 95}, 0.9)
	if qos.MinQoSPercent <= 95 || qos.MinQoSPercent >= 100 {
		t.Errorf("tightened QoS=%v want in (95, 100)", qos.MinQoSPercent)
	}
}

func TestTunerEmptyCandidates(t *testing.T) {
	tuner := &LinearSearchTuner{Service: services.NewCassandra()}
	if _, err := tuner.Tune(services.Workload{Clients: 1}, 0); err == nil {
		t.Error("no candidates should error")
	}
}
