package core

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/services"
)

// TestProfileIntoMatchesLegacyProfile: the allocation-free ProfileInto
// path must consume the same RNG stream and produce bit-identical
// values to the legacy Profile/ProfileWindow API at a fixed seed, for
// every service and for both explicit event subsets and the full
// catalog (events == nil).
func TestProfileIntoMatchesLegacyProfile(t *testing.T) {
	svcs := []services.Service{services.NewCassandra(), services.NewSPECWeb(), services.NewRUBiS()}
	eventSets := [][]metrics.Event{
		nil, // full catalog
		{metrics.EvBusqEmpty, metrics.EvCPUClkUnhalt},
		{metrics.EvFlopsRate, metrics.EvXenNetTx, metrics.EvPageWalks},
	}
	for _, svc := range svcs {
		for setIdx, events := range eventSets {
			legacyProf, err := NewProfiler(svc, rand.New(rand.NewSource(99)))
			if err != nil {
				t.Fatal(err)
			}
			fastProf, err := NewProfiler(svc, rand.New(rand.NewSource(99)))
			if err != nil {
				t.Fatal(err)
			}
			var sig Signature
			for round := 0; round < 5; round++ {
				w := services.Workload{Clients: 100 + 50*float64(round), Mix: svc.DefaultMix()}
				legacy, err := legacyProf.ProfileWindow(w, events, 10*time.Second)
				if err != nil {
					t.Fatal(err)
				}
				if err := fastProf.ProfileInto(w, events, 10*time.Second, &sig); err != nil {
					t.Fatal(err)
				}
				if len(sig.Values) != len(legacy.Values) {
					t.Fatalf("%s set %d: width %d != %d", svc.Name(), setIdx, len(sig.Values), len(legacy.Values))
				}
				for i := range legacy.Values {
					if sig.Values[i] != legacy.Values[i] {
						t.Fatalf("%s set %d round %d: value[%d] fast=%v legacy=%v (event %s)",
							svc.Name(), setIdx, round, i, sig.Values[i], legacy.Values[i], legacy.Events[i])
					}
					if sig.Events[i] != legacy.Events[i] {
						t.Fatalf("%s set %d: event[%d] %s != %s", svc.Name(), setIdx, i, sig.Events[i], legacy.Events[i])
					}
				}
			}
		}
	}
}

// TestProfileIntoReusesBuffers: steady-state profiling must not grow
// the signature buffer and must reuse the cached query monitor.
func TestProfileIntoReusesBuffers(t *testing.T) {
	svc := services.NewCassandra()
	prof, err := NewProfiler(svc, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	events := []metrics.Event{metrics.EvBusqEmpty, metrics.EvCPUClkUnhalt}
	var sig Signature
	w := services.Workload{Clients: 200, Mix: svc.DefaultMix()}
	if err := prof.ProfileInto(w, events, 10*time.Second, &sig); err != nil {
		t.Fatal(err)
	}
	firstBuf := &sig.Values[0]
	allocs := testing.AllocsPerRun(100, func() {
		if err := prof.ProfileInto(w, events, 10*time.Second, &sig); err != nil {
			t.Fatal(err)
		}
	})
	if &sig.Values[0] != firstBuf {
		t.Error("ProfileInto reallocated the signature buffer in steady state")
	}
	if allocs > 0 {
		t.Errorf("ProfileInto allocates %v times per call in steady state, want 0", allocs)
	}
}

// TestClassifySteadyStateAllocationFree locks in the pooled
// standardize scratch: classification must not allocate.
func TestClassifySteadyStateAllocationFree(t *testing.T) {
	repo, _, prof, _ := learnMessengerDay(t, 11)
	sig, err := prof.Profile(services.Workload{Clients: 300, Mix: prof.Service.DefaultMix()}, repo.Events())
	if err != nil {
		t.Fatal(err)
	}
	// Warm the pool.
	if _, _, _, err := repo.Classify(sig); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, _, _, err := repo.Classify(sig); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Errorf("Classify allocates %v times per call in steady state, want 0", allocs)
	}
}
