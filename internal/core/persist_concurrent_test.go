package core

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/cloud"
)

// TestPersistenceUnderConcurrency round-trips Save/LoadRepository
// while concurrent Classify/Lookup/Put traffic keeps hammering the
// old version, then swaps the restored repository in through a Handle
// and asserts it serves decisions identical to the original. This is
// the dejavud snapshot story: snapshots are taken under live load and
// a restarted daemon must be indistinguishable decision-wise. Run
// with -race.
func TestPersistenceUnderConcurrency(t *testing.T) {
	repo := learnTestRepository(t, 21)
	events := repo.EventsRef()
	h, err := NewHandle(repo)
	if err != nil {
		t.Fatal(err)
	}

	// Probe signatures spanning foreseen and unforeseen space.
	var probes [][]float64
	for i := 0; i < 32; i++ {
		row := make([]float64, len(events))
		for j := range row {
			row[j] = float64(1+i*40) * float64(j+1)
		}
		probes = append(probes, row)
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			sig := &Signature{Events: events}
			i := 0
			for !stop.Load() {
				cur := h.Current()
				sig.Values = probes[i%len(probes)]
				if _, _, _, err := cur.Repo.Classify(sig); err != nil {
					t.Error(err)
					return
				}
				if _, err := cur.Repo.Lookup(sig, worker%3); err != nil {
					t.Error(err)
					return
				}
				// Writers keep mutating the entry map of whatever
				// version is live while snapshots are being taken.
				class := i % cur.Repo.Classes()
				alloc := cloud.Allocation{Type: cloud.Large, Count: 1 + i%8}
				if err := cur.Repo.Put(class, worker, alloc); err != nil {
					t.Error(err)
					return
				}
				i++
			}
		}(g)
	}

	// Several snapshot/restore/swap cycles under the live load above.
	for round := 0; round < 5; round++ {
		var buf bytes.Buffer
		old := h.Current().Repo
		if err := SaveRepository(old, &buf); err != nil {
			t.Fatal(err)
		}
		restored, err := LoadRepository(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := h.Swap(restored); err != nil {
			t.Fatal(err)
		}
	}
	stop.Store(true)
	wg.Wait()

	// Quiesced: the final restored repository must decide identically
	// to a clean save/load of itself — and, for the learned artifacts,
	// identically to the original.
	final := h.Current().Repo
	if got, want := h.Version(), uint64(6); got != want {
		t.Fatalf("version %d after 5 swaps, want %d", got, want)
	}
	sig := &Signature{Events: events}
	for i, row := range probes {
		sig.Values = row
		c0, cert0, unf0, err0 := repo.Classify(sig)
		c1, cert1, unf1, err1 := final.Classify(sig)
		if err0 != nil || err1 != nil {
			t.Fatalf("probe %d: classify errs %v / %v", i, err0, err1)
		}
		if c0 != c1 || cert0 != cert1 || unf0 != unf1 {
			t.Errorf("probe %d: restored decision (%d,%v,%v) != original (%d,%v,%v)",
				i, c1, cert1, unf1, c0, cert0, unf0)
		}
	}

	// Entries survive the JSON round trip: whatever the final snapshot
	// carried is what the restored repository serves.
	var buf bytes.Buffer
	if err := SaveRepository(final, &buf); err != nil {
		t.Fatal(err)
	}
	reread, err := LoadRepository(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a, b := final.Snapshot(), reread.Snapshot()
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Errorf("entries diverged across round trip:\n%v\n%v", a, b)
	}
}
