package core

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/cloud"
	"repro/internal/metrics"
	"repro/internal/services"
	"repro/internal/sim"
)

// ControllerConfig configures the runtime DejaVu controller.
type ControllerConfig struct {
	// Source is the decision plane the controller consults: an
	// in-process repository handle or a remote dejavud client.
	// Exactly one of Source and Repository must be set.
	Source DecisionSource
	// Repository is the learned signature cache — the historical
	// in-process shape, wrapped into a DecisionSource internally.
	Repository *Repository
	// Profiler collects runtime signatures (~10 s each).
	Profiler *Profiler
	// Tuner handles repository misses (new interference buckets).
	Tuner Tuner
	// Service provides SLO and full-capacity information.
	Service services.Service
	// ProfileInterval is the periodic profiling cadence (default
	// 1 hour, the traces' granularity).
	ProfileInterval time.Duration
	// SignatureTime is the signature collection latency charged per
	// adaptation (default DefaultSignatureWindow = 10 s).
	SignatureTime time.Duration
	// InterferenceDetection enables the Eq. 2 feedback loop;
	// disabling it reproduces the interference-oblivious baseline of
	// Fig. 11.
	InterferenceDetection bool
	// OnDemandProfiling additionally triggers a profiling round as
	// soon as the SLO is violated rather than waiting for the next
	// periodic round — the paper's "periodically or on-demand (e.g.,
	// upon a violation of an SLO)". Useful when the workload can
	// change between periodic rounds.
	OnDemandProfiling bool
	// OnDemandCooldown rate-limits violation-triggered profiling
	// (default 5 minutes).
	OnDemandCooldown time.Duration
	// RelearnThreshold is the number of consecutive unforeseen
	// profiling rounds after which the controller reports that the
	// clustering has gone stale (paper §3.5: "If the repository
	// repeatedly outputs low certainty levels, it most likely means
	// that the workload has changed over time and the current
	// clustering is no longer relevant"). Default 3.
	RelearnThreshold int
	// InterferenceGrace is how long after an allocation change the
	// controller waits before blaming interference for violations,
	// covering warm-up and the worst of the re-partitioning
	// transient (default: half the service's stabilization period,
	// floored at 2 minutes).
	InterferenceGrace time.Duration
}

// Controller is the runtime DejaVu loop (paper §3.5–3.6): on workload
// change, collect a signature, classify it, and instantly reuse the
// cached allocation; fall back to full capacity for unforeseen
// workloads; detect interference through the performance index and
// re-provision from the interference-keyed cache.
type Controller struct {
	cfg ControllerConfig
	src DecisionSource

	// sigEvents is the decision source's signature tuple, fetched once so
	// every profiling round reuses the same slice (which also keys the
	// profiler's monitor cache); sigScratch is the reusable signature
	// the fast path samples into — together they make the steady-state
	// profile+classify round allocation-free.
	sigEvents  []metrics.Event
	sigScratch Signature

	lastProfile          time.Duration
	lastDecision         time.Duration
	currentClass         int
	currentBucket        int
	adaptations          []time.Duration
	unforeseenCount      int
	consecutiveUnforseen int
	tuningCount          int
	interferenceHit      int

	// scratchTarget backs Action.Target for every decision: the sim
	// engine dereferences the pointer before the next Step, so reusing
	// one field instead of boxing a fresh allocation per decision keeps
	// the controller's hot path off the heap (the &target escape was
	// the single largest alloc source in the fleet run phase).
	scratchTarget cloud.Allocation
}

// NewController validates the configuration and returns a runtime
// controller.
func NewController(cfg ControllerConfig) (*Controller, error) {
	if cfg.Profiler == nil || cfg.Tuner == nil || cfg.Service == nil {
		return nil, errors.New("core: controller needs Source (or Repository), Profiler, Tuner, and Service")
	}
	src := cfg.Source
	if src == nil {
		var err error
		if src, err = SourceForRepository(cfg.Repository); err != nil {
			return nil, errors.New("core: controller needs Source (or Repository), Profiler, Tuner, and Service")
		}
	} else if cfg.Repository != nil {
		return nil, errors.New("core: set ControllerConfig.Source or Repository, not both")
	}
	if cfg.ProfileInterval <= 0 {
		cfg.ProfileInterval = time.Hour
	}
	if cfg.SignatureTime <= 0 {
		cfg.SignatureTime = DefaultSignatureWindow
	}
	if cfg.InterferenceGrace <= 0 {
		cfg.InterferenceGrace = cfg.Service.StabilizationPeriod() / 2
		if cfg.InterferenceGrace < 2*time.Minute {
			cfg.InterferenceGrace = 2 * time.Minute
		}
	}
	if cfg.OnDemandCooldown <= 0 {
		cfg.OnDemandCooldown = 5 * time.Minute
	}
	if cfg.RelearnThreshold <= 0 {
		cfg.RelearnThreshold = 3
	}
	return &Controller{
		cfg:          cfg,
		src:          src,
		sigEvents:    src.Events(),
		lastProfile:  -1 << 62,
		lastDecision: -1 << 62,
		currentClass: -1,
	}, nil
}

// Name implements sim.Controller.
func (c *Controller) Name() string { return "dejavu" }

// Step implements sim.Controller.
func (c *Controller) Step(obs *sim.Observation) (sim.Action, error) {
	if obs.InTransition {
		return sim.Action{}, nil
	}

	// Periodic (or first) profiling: the cache-hit fast path. An SLO
	// violation triggers the same round early when on-demand
	// profiling is enabled — a workload change between periodic
	// rounds then costs minutes instead of up to a full interval.
	periodic := obs.Now-c.lastProfile >= c.cfg.ProfileInterval
	onDemand := c.cfg.OnDemandProfiling && obs.SLOViolated &&
		obs.Now-c.lastProfile >= c.cfg.OnDemandCooldown &&
		obs.Now-c.lastDecision >= c.cfg.OnDemandCooldown
	if periodic || onDemand {
		c.lastProfile = obs.Now
		return c.profileAndReuse(obs)
	}

	// On-demand path: an SLO violation outside any transition or
	// grace window points at interference (the workload class was
	// just verified, so "workload changes are excluded from the
	// potential reasons").
	if c.cfg.InterferenceDetection && obs.SLOViolated &&
		obs.Now-c.lastDecision >= c.cfg.InterferenceGrace && c.currentClass >= 0 {
		return c.handleInterference(obs)
	}
	return sim.Action{}, nil
}

// profileAndReuse collects a signature, classifies it, and reuses the
// cached allocation.
func (c *Controller) profileAndReuse(obs *sim.Observation) (sim.Action, error) {
	if err := c.cfg.Profiler.ProfileInto(obs.Workload, c.sigEvents, c.cfg.Profiler.Window, &c.sigScratch); err != nil {
		return sim.Action{}, fmt.Errorf("core: runtime profiling: %w", err)
	}
	sig := &c.sigScratch

	// Track the current interference level so the lookup lands in
	// the right bucket even across workload-class changes.
	if c.cfg.InterferenceDetection {
		c.currentBucket = c.estimateBucket(obs)
	}

	res, err := c.src.Lookup(sig, c.currentBucket)
	if err != nil {
		return sim.Action{}, err
	}
	if res.Unforeseen {
		// "DejaVu configures the service with the maximum allowed
		// capacity to ensure that the performance is not affected
		// when experiencing non-classified workloads."
		c.unforeseenCount++
		c.consecutiveUnforseen++
		c.currentClass = -1
		max := c.cfg.Service.MaxAllocation()
		return c.decide(obs, max, c.cfg.SignatureTime), nil
	}
	c.consecutiveUnforseen = 0
	c.currentClass = res.Class
	if res.Hit {
		return c.decide(obs, res.Allocation, c.cfg.SignatureTime), nil
	}
	// Known class, missing interference bucket: tune under the
	// bucket's representative contention and cache the result.
	alloc, err := c.tuneAndStore(obs.Workload, res.Class, c.currentBucket)
	if err != nil {
		return sim.Action{}, err
	}
	return c.decide(obs, alloc, c.cfg.SignatureTime+c.cfg.Tuner.Duration()), nil
}

// handleInterference runs the Eq. 2 feedback loop.
func (c *Controller) handleInterference(obs *sim.Observation) (sim.Action, error) {
	bucket := c.estimateBucket(obs)
	if bucket <= c.currentBucket {
		// The estimate does not explain the violation with a higher
		// bucket; escalate by one to provision more resources (the
		// pragmatic "request more resources" response).
		bucket = c.currentBucket + 1
	}
	if bucket > maxInterferenceBucket {
		bucket = maxInterferenceBucket
	}
	c.currentBucket = bucket
	c.interferenceHit++

	alloc, ok, err := c.src.Get(c.currentClass, bucket)
	if err != nil {
		return sim.Action{}, err
	}
	if ok {
		return c.decide(obs, alloc, c.cfg.SignatureTime), nil
	}
	alloc, err = c.tuneAndStore(obs.Workload, c.currentClass, bucket)
	if err != nil {
		return sim.Action{}, err
	}
	return c.decide(obs, alloc, c.cfg.SignatureTime+c.cfg.Tuner.Duration()), nil
}

// estimateBucket contrasts the measured production performance with
// the profiler's isolation performance for the current allocation,
// then inverts the latency model to recover the contention fraction —
// an allocation-invariant quantity, so the estimate stays stable after
// a compensating allocation deploys.
func (c *Controller) estimateBucket(obs *sim.Observation) int {
	iso := c.cfg.Profiler.IsolationPerf(obs.Workload, obs.Allocation.Capacity())
	index := InterferenceIndex(obs.Perf, iso)
	fraction := EstimateInterferenceFraction(index, iso.Utilization)
	return BucketForFraction(fraction)
}

func (c *Controller) tuneAndStore(w services.Workload, class, bucket int) (cloud.Allocation, error) {
	frac := FractionForBucket(bucket)
	alloc, err := c.cfg.Tuner.Tune(w, frac)
	if err != nil {
		return cloud.Allocation{}, fmt.Errorf("core: tuning class %d bucket %d: %w", class, bucket, err)
	}
	c.tuningCount++
	if err := c.src.Put(class, bucket, alloc); err != nil {
		return cloud.Allocation{}, err
	}
	return alloc, nil
}

// decide wraps an allocation change into an action and records the
// adaptation time; unchanged allocations cost nothing.
func (c *Controller) decide(obs *sim.Observation, alloc cloud.Allocation, decisionTime time.Duration) sim.Action {
	if alloc.Equal(obs.TargetAllocation) {
		return sim.Action{}
	}
	c.lastDecision = obs.Now + decisionTime
	if c.adaptations == nil {
		// Right-sized up front: a day-scale run makes tens of
		// adaptations, and append's doubling ladder on a nil slice was
		// measurable across a 100k-VM fleet.
		c.adaptations = make([]time.Duration, 0, 32)
	}
	c.adaptations = append(c.adaptations, decisionTime)
	c.scratchTarget = alloc
	return sim.Action{Target: &c.scratchTarget, DecisionTime: decisionTime}
}

// AdaptationTimes returns the decision latency of every allocation
// change the controller made (10 s on cache hits; signature time plus
// tuning time on misses) — the quantity Figure 8 compares against
// RightScale.
func (c *Controller) AdaptationTimes() []time.Duration {
	return append([]time.Duration(nil), c.adaptations...)
}

// UnforeseenCount returns how many profiling rounds fell back to full
// capacity.
func (c *Controller) UnforeseenCount() int { return c.unforeseenCount }

// TuningCount returns how many tuner invocations the runtime needed.
func (c *Controller) TuningCount() int { return c.tuningCount }

// InterferenceEvents returns how many times the interference loop
// fired.
func (c *Controller) InterferenceEvents() int { return c.interferenceHit }

// NeedsRelearning reports whether the clustering has gone stale:
// RelearnThreshold consecutive profiling rounds failed to classify.
// The Relearner acts on this signal by re-running the learning phase.
func (c *Controller) NeedsRelearning() bool {
	return c.consecutiveUnforseen >= c.cfg.RelearnThreshold
}

// ReplaceRepository swaps in a freshly learned repository and resets
// the staleness tracking; used by the Relearner after re-clustering.
func (c *Controller) ReplaceRepository(repo *Repository) error {
	src, err := SourceForRepository(repo)
	if err != nil {
		return err
	}
	c.cfg.Repository = repo
	c.src = src
	c.sigEvents = repo.EventsRef()
	c.consecutiveUnforseen = 0
	c.currentClass = -1
	c.currentBucket = 0
	return nil
}

var _ sim.Controller = (*Controller)(nil)
