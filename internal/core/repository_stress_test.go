package core

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"repro/internal/cloud"
)

// stressSignature returns a signature that classifies into class 1
// (near the (10,10) raw-space centroid of buildTestRepository).
func stressSignature(repo *Repository) *Signature {
	return &Signature{Events: repo.Events(), Values: []float64{10, 10}}
}

// TestRepositoryConcurrentPutGet hammers Put and Get for every class
// and bucket from many goroutines; run with -race to catch unguarded
// shard access.
func TestRepositoryConcurrentPutGet(t *testing.T) {
	repo := buildTestRepository(t)
	const goroutines = 16
	const rounds = 200

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				class := (g + i) % repo.Classes()
				bucket := i % (maxInterferenceBucket + 1)
				a := cloud.Allocation{Type: cloud.Large, Count: 2 + i%8}
				if err := repo.Put(class, bucket, a); err != nil {
					t.Errorf("Put(%d, %d): %v", class, bucket, err)
					return
				}
				if got, ok := repo.Get(class, bucket); !ok {
					t.Errorf("Get(%d, %d) missed right after Put", class, bucket)
					return
				} else if got.Count < 2 || got.Count > 9 {
					t.Errorf("Get(%d, %d) = %v, outside any written value", class, bucket, got)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestRepositoryConcurrentLookupCounters runs a known-hit lookup from
// many goroutines and checks the atomic hit/miss counters add up
// exactly once quiescent.
func TestRepositoryConcurrentLookupCounters(t *testing.T) {
	repo := buildTestRepository(t)
	sig := stressSignature(repo)
	class, _, unforeseen, err := repo.Classify(sig)
	if err != nil {
		t.Fatal(err)
	}
	if unforeseen {
		t.Fatal("stress signature should classify")
	}
	// Cache an allocation for bucket 0 only: even buckets hit, odd
	// buckets miss.
	if err := repo.Put(class, 0, cloud.Allocation{Type: cloud.Large, Count: 4}); err != nil {
		t.Fatal(err)
	}

	const goroutines = 12
	const lookups = 150
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < lookups; i++ {
				res, err := repo.Lookup(sig, (g+i)%2)
				if err != nil {
					t.Errorf("Lookup: %v", err)
					return
				}
				if bucket := (g + i) % 2; res.Hit != (bucket == 0) {
					t.Errorf("bucket %d: hit=%v", bucket, res.Hit)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	hits, misses := repo.LookupCounts()
	if hits+misses != goroutines*lookups {
		t.Errorf("hits %d + misses %d = %d, want %d lookups",
			hits, misses, hits+misses, goroutines*lookups)
	}
	// Each goroutine alternates buckets, so hits and misses are
	// exactly half each (lookups is even).
	if hits != goroutines*lookups/2 {
		t.Errorf("hits = %d, want %d", hits, goroutines*lookups/2)
	}
	if want := 0.5; repo.HitRate() != want {
		t.Errorf("HitRate = %v, want %v", repo.HitRate(), want)
	}
}

// TestRepositoryConcurrentMixed exercises the full surface at once —
// Put, Get, Lookup, Classify, Snapshot, HitRate, and Save — the access
// pattern of a fleet of controllers sharing one repository.
func TestRepositoryConcurrentMixed(t *testing.T) {
	repo := buildTestRepository(t)
	sig := stressSignature(repo)
	if err := repo.Put(1, 0, cloud.Allocation{Type: cloud.Large, Count: 3}); err != nil {
		t.Fatal(err)
	}

	const goroutines = 16
	const rounds = 100
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				switch (g + i) % 5 {
				case 0:
					bucket := i % (maxInterferenceBucket + 1)
					if err := repo.Put(i%repo.Classes(), bucket,
						cloud.Allocation{Type: cloud.Large, Count: 2 + i%6}); err != nil {
						t.Errorf("Put: %v", err)
						return
					}
				case 1:
					repo.Get(i%repo.Classes(), i%4)
				case 2:
					if _, err := repo.Lookup(sig, i%3); err != nil {
						t.Errorf("Lookup: %v", err)
						return
					}
				case 3:
					snap := repo.Snapshot()
					for j := 1; j < len(snap); j++ {
						prev, cur := snap[j-1], snap[j]
						if cur.Class < prev.Class ||
							(cur.Class == prev.Class && cur.Bucket <= prev.Bucket) {
							t.Errorf("Snapshot not sorted/unique at %d: %+v then %+v", j, prev, cur)
							return
						}
					}
				default:
					var buf bytes.Buffer
					if err := repo.Save(&buf); err != nil {
						t.Errorf("Save: %v", err)
						return
					}
					repo.HitRate()
				}
			}
		}(g)
	}
	wg.Wait()

	// The serialized snapshot must round-trip after the storm.
	var buf bytes.Buffer
	if err := repo.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadRepository(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(restored.Snapshot()), len(repo.Snapshot()); got != want {
		t.Errorf("restored %d entries, want %d", got, want)
	}
}

// TestRepositoryShardDistribution pins the class->shard mapping: every
// class gets a shard and distinct classes under repoShards never
// collide, so per-class contention is isolated.
func TestRepositoryShardDistribution(t *testing.T) {
	repo := buildTestRepository(t)
	seen := map[*repoShard]int{}
	for class := 0; class < repoShards; class++ {
		seen[repo.shardFor(class)]++
	}
	if len(seen) != repoShards {
		t.Errorf("%d classes mapped to %d shards, want %d", repoShards, len(seen), repoShards)
	}
}

func BenchmarkRepositoryConcurrentLookup(b *testing.B) {
	// Mirrors buildTestRepository without *testing.T plumbing.
	t := &testing.T{}
	repo := buildTestRepository(t)
	if t.Failed() {
		b.Fatal("repository setup failed")
	}
	sig := stressSignature(repo)
	class, _, _, err := repo.Classify(sig)
	if err != nil {
		b.Fatal(err)
	}
	if err := repo.Put(class, 0, cloud.Allocation{Type: cloud.Large, Count: 4}); err != nil {
		b.Fatal(err)
	}
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := repo.Lookup(sig, 0); err != nil {
				b.Fatal(fmt.Sprintf("Lookup: %v", err))
			}
		}
	})
}
