package core

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"repro/internal/cloud"
	"repro/internal/metrics"
	"repro/internal/services"
	"repro/internal/trace"
)

// --- Repository persistence -----------------------------------------

func TestRepositorySaveLoadRoundTrip(t *testing.T) {
	repo, _, prof, _ := learnMessengerDay(t, 21)
	var buf bytes.Buffer
	if err := repo.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadRepository(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Classes() != repo.Classes() {
		t.Fatalf("classes %d -> %d", repo.Classes(), back.Classes())
	}
	evs := repo.Events()
	backEvs := back.Events()
	for i := range evs {
		if evs[i] != backEvs[i] {
			t.Fatalf("event %d: %s -> %s", i, evs[i], backEvs[i])
		}
	}
	// Entries preserved.
	if len(back.Snapshot()) != len(repo.Snapshot()) {
		t.Fatalf("entries %d -> %d", len(repo.Snapshot()), len(back.Snapshot()))
	}
	for i, e := range repo.Snapshot() {
		b := back.Snapshot()[i]
		if e.Class != b.Class || e.Bucket != b.Bucket || !e.Allocation.Equal(b.Allocation) {
			t.Fatalf("entry %d: %+v -> %+v", i, e, b)
		}
	}
	// Classification behaviour preserved across a workload sweep.
	svc := services.NewCassandra()
	for _, clients := range []float64{60, 170, 320, 470} {
		sig, err := prof.Profile(services.Workload{Clients: clients, Mix: svc.DefaultMix()}, repo.Events())
		if err != nil {
			t.Fatal(err)
		}
		c1, _, u1, err := repo.Classify(sig)
		if err != nil {
			t.Fatal(err)
		}
		c2, _, u2, err := back.Classify(sig)
		if err != nil {
			t.Fatal(err)
		}
		if c1 != c2 || u1 != u2 {
			t.Errorf("clients=%v: (%d,%v) vs (%d,%v)", clients, c1, u1, c2, u2)
		}
	}
}

func TestLoadRepositoryErrors(t *testing.T) {
	if _, err := LoadRepository(bytes.NewBufferString("not json")); err == nil {
		t.Error("garbage should error")
	}
	if _, err := LoadRepository(bytes.NewBufferString(`{"version":99}`)); err == nil {
		t.Error("unknown version should error")
	}
	// Unknown instance type in an entry.
	repo, _, _, _ := learnMessengerDay(t, 22)
	var buf bytes.Buffer
	if err := repo.Save(&buf); err != nil {
		t.Fatal(err)
	}
	corrupted := bytes.ReplaceAll(buf.Bytes(), []byte(`"large"`), []byte(`"gpu9000"`))
	if _, err := LoadRepository(bytes.NewReader(corrupted)); err == nil {
		t.Error("unknown instance type should error")
	}
}

// --- Cross-tenant shared tuning cache --------------------------------

func TestSharedTuningCacheAcrossTenants(t *testing.T) {
	cache := NewSharedTuningCache()
	rng := rand.New(rand.NewSource(23))
	tr := trace.Messenger(trace.SynthConfig{Rng: rng}).ScaleTo(480)
	day0, err := tr.Day(0)
	if err != nil {
		t.Fatal(err)
	}

	learnTenant := func(seed int64) int {
		svc := services.NewCassandra()
		tenantRng := rand.New(rand.NewSource(seed))
		prof, err := NewProfiler(svc, tenantRng)
		if err != nil {
			t.Fatal(err)
		}
		inner, err := NewScaleOutTuner(svc, cloud.Large, svc.MinInstances, svc.MaxInstances)
		if err != nil {
			t.Fatal(err)
		}
		shared, err := NewSharedTuner(cache, svc, inner)
		if err != nil {
			t.Fatal(err)
		}
		before := cache.Misses()
		_, _, err = Learn(LearnConfig{
			Profiler:  prof,
			Tuner:     shared,
			Workloads: WorkloadsFromTrace(day0, svc.DefaultMix()),
			Rng:       tenantRng,
		})
		if err != nil {
			t.Fatal(err)
		}
		return cache.Misses() - before
	}

	missesA := learnTenant(1)
	missesB := learnTenant(2)
	if missesA == 0 {
		t.Fatal("first tenant should populate the cache (misses > 0)")
	}
	if missesB >= missesA {
		t.Errorf("second tenant misses=%d should be below first=%d (experience reuse)",
			missesB, missesA)
	}
	if cache.Hits() == 0 {
		t.Error("no cross-tenant hits recorded")
	}
	if cache.Len() == 0 {
		t.Error("cache should hold memoized operating points")
	}
}

func TestSharedTunerDuration(t *testing.T) {
	cache := NewSharedTuningCache()
	svc := services.NewCassandra()
	inner, _ := NewScaleOutTuner(svc, cloud.Large, 2, 10)
	shared, err := NewSharedTuner(cache, svc, inner)
	if err != nil {
		t.Fatal(err)
	}
	w := services.Workload{Clients: 300, Mix: svc.DefaultMix()}
	if _, err := shared.Tune(w, 0); err != nil {
		t.Fatal(err)
	}
	if shared.Duration() == 0 {
		t.Error("miss should cost inner tuner time")
	}
	if _, err := shared.Tune(w, 0); err != nil {
		t.Fatal(err)
	}
	if shared.Duration() != 0 {
		t.Error("hit should cost nothing")
	}
}

func TestSharedTunerValidation(t *testing.T) {
	svc := services.NewCassandra()
	inner, _ := NewScaleOutTuner(svc, cloud.Large, 2, 10)
	if _, err := NewSharedTuner(nil, svc, inner); err == nil {
		t.Error("nil cache should error")
	}
	if _, err := NewSharedTuner(NewSharedTuningCache(), nil, inner); err == nil {
		t.Error("nil service should error")
	}
	if _, err := NewSharedTuner(NewSharedTuningCache(), svc, nil); err == nil {
		t.Error("nil inner should error")
	}
	shared, _ := NewSharedTuner(NewSharedTuningCache(), svc, inner)
	if _, err := shared.Tune(services.Workload{Clients: 1}, 1.5); err == nil {
		t.Error("bad interference should error")
	}
}

// --- Interference attribution ----------------------------------------

func TestAttributeInterferenceRanksAffectedResource(t *testing.T) {
	events := []metrics.Event{
		metrics.EvCPUClkUnhalt, metrics.EvFlopsRate, // cpu
		metrics.EvL2Ads, metrics.EvL2St, // cache
		metrics.EvXenVBDRd, metrics.EvXenVBDWr, // io
	}
	ref := &Signature{Events: events, Values: []float64{1e6, 1e4, 2e4, 3e4, 100, 200}}
	// Cache counters inflated 60%; everything else within 5%.
	obs := &Signature{Events: events, Values: []float64{1.05e6, 1.02e4, 3.2e4, 4.8e4, 103, 198}}
	scores, err := AttributeInterference(ref, obs)
	if err != nil {
		t.Fatal(err)
	}
	if scores[0].Resource != ResourceCache {
		t.Errorf("top suspect=%s want cache (scores %+v)", scores[0].Resource, scores)
	}
	if scores[0].Deviation < 0.5 {
		t.Errorf("cache deviation=%v want >= 0.5", scores[0].Deviation)
	}
	// Descending order.
	for i := 1; i < len(scores); i++ {
		if scores[i].Deviation > scores[i-1].Deviation {
			t.Errorf("scores not sorted: %+v", scores)
		}
	}
}

func TestAttributeInterferenceValidation(t *testing.T) {
	a := &Signature{Events: []metrics.Event{metrics.EvXenCPU}, Values: []float64{1}}
	b := &Signature{Events: []metrics.Event{metrics.EvXenCPU, metrics.EvXenMem}, Values: []float64{1, 2}}
	if _, err := AttributeInterference(a, b); err == nil {
		t.Error("width mismatch should error")
	}
	c := &Signature{Events: []metrics.Event{metrics.EvXenMem}, Values: []float64{1}}
	if _, err := AttributeInterference(a, c); err == nil {
		t.Error("event mismatch should error")
	}
	if _, err := AttributeInterference(&Signature{}, &Signature{}); err == nil {
		t.Error("empty signatures should error")
	}
}

func TestAttributeInterferenceZeroReference(t *testing.T) {
	events := []metrics.Event{metrics.EvXenCPU, metrics.EvXenMem}
	ref := &Signature{Events: events, Values: []float64{0, 100}}
	obs := &Signature{Events: events, Values: []float64{50, 110}}
	scores, err := AttributeInterference(ref, obs)
	if err != nil {
		t.Fatal(err)
	}
	// Only the mem event contributes (cpu reference is 0).
	total := 0
	for _, s := range scores {
		total += s.Events
	}
	if total != 1 {
		t.Errorf("contributing events=%d want 1", total)
	}
}

func TestResourceOf(t *testing.T) {
	if ResourceOf(metrics.EvL2St) != ResourceCache {
		t.Error("l2_st should be cache")
	}
	if ResourceOf(metrics.EvXenVBDWr) != ResourceIO {
		t.Error("vbd_wr should be io")
	}
	if ResourceOf(metrics.Event("uops_retired")) != ResourceOther {
		t.Error("filler should be other")
	}
}

// --- Batch diagnosis ---------------------------------------------------

func TestDiagnoseBatch(t *testing.T) {
	job, err := services.NewBatchJob("sort", 100, 10*time.Minute, 11*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	// Healthy: production within expectation.
	rep, err := DiagnoseBatch(job, 11*time.Minute, 10*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Diagnosis != BatchHealthy {
		t.Errorf("diagnosis=%v want healthy", rep.Diagnosis)
	}
	// Interference: production 50% slower than isolation.
	rep, err = DiagnoseBatch(job, 15*time.Minute, 10*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Diagnosis != BatchInterference {
		t.Errorf("diagnosis=%v want interference", rep.Diagnosis)
	}
	if rep.Index < 1.4 {
		t.Errorf("index=%v want ~1.5", rep.Index)
	}
	// Mis-estimation: violates SLO but isolation is just as slow.
	rep, err = DiagnoseBatch(job, 15*time.Minute, 14*time.Minute+30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Diagnosis != BatchMisestimated {
		t.Errorf("diagnosis=%v want mis-estimated", rep.Diagnosis)
	}
}

func TestDiagnoseBatchValidation(t *testing.T) {
	if _, err := DiagnoseBatch(nil, time.Minute, time.Minute); err == nil {
		t.Error("nil job should error")
	}
	job, _ := services.NewBatchJob("j", 1, time.Minute, time.Minute)
	if _, err := DiagnoseBatch(job, 0, time.Minute); err == nil {
		t.Error("zero production duration should error")
	}
	if _, err := DiagnoseBatch(job, time.Minute, 0); err == nil {
		t.Error("zero isolation duration should error")
	}
}

func TestBatchDiagnosisString(t *testing.T) {
	for d, want := range map[BatchDiagnosis]string{
		BatchHealthy:       "healthy",
		BatchInterference:  "interference",
		BatchMisestimated:  "mis-estimated expectation",
		BatchDiagnosis(99): "unknown",
	} {
		if d.String() != want {
			t.Errorf("String(%d)=%q want %q", d, d.String(), want)
		}
	}
}

func TestProbeBatchIsolation(t *testing.T) {
	job, _ := services.NewBatchJob("j", 10, 10*time.Minute, 12*time.Minute)
	if got := ProbeBatchIsolation(job, 1); got != 10*time.Minute {
		t.Errorf("isolation probe=%v want 10m", got)
	}
	if got := ProbeBatchIsolation(job, 2); got != 5*time.Minute {
		t.Errorf("isolation probe at 2 units=%v want 5m", got)
	}
}
