package core

import (
	"math/rand"
	"testing"

	"repro/internal/cloud"
	"repro/internal/services"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Scale-up (vertical) controller integration: SPECweb served by a
// fixed count of instances whose type DejaVu switches between large
// and extra-large, mirroring §4.2.

func buildScaleUpDejaVu(t *testing.T, seed int64) (*Controller, *Repository, *services.SPECWeb, *trace.Trace) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	svc := services.NewSPECWeb()
	tr := trace.HotMail(trace.SynthConfig{Rng: rng}).ScaleTo(350)
	day0, err := tr.Day(0)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := NewProfiler(svc, rng)
	if err != nil {
		t.Fatal(err)
	}
	tuner, err := NewScaleUpTuner(svc, svc.Instances, []cloud.InstanceType{cloud.Large, cloud.XLarge})
	if err != nil {
		t.Fatal(err)
	}
	repo, _, err := Learn(LearnConfig{
		Profiler:  prof,
		Tuner:     tuner,
		Workloads: WorkloadsFromTrace(day0, svc.DefaultMix()),
		Rng:       rng,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := NewController(ControllerConfig{
		Repository: repo,
		Profiler:   prof,
		Tuner:      tuner,
		Service:    svc,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ctl, repo, svc, tr
}

func TestScaleUpControllerSwitchesTypes(t *testing.T) {
	ctl, repo, svc, tr := buildScaleUpDejaVu(t, 31)
	day1, err := tr.Day(1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(sim.Config{
		Service:    svc,
		Trace:      day1,
		Controller: ctl,
		Initial:    svc.MaxAllocation(),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Count must never change (vertical scaling only).
	sawLarge, sawXLarge := false, false
	for _, rec := range res.Records {
		if int(rec.Alloc.Count) != svc.Instances {
			t.Fatalf("instance count changed to %d", rec.Alloc.Count)
		}
		switch rec.Alloc.Type.Instance().Name {
		case cloud.Large.Name:
			sawLarge = true
		case cloud.XLarge.Name:
			sawXLarge = true
		}
	}
	if !sawLarge {
		t.Error("off-peak hours should run on large")
	}
	if !sawXLarge {
		t.Error("the midday peak should run on xlarge")
	}
	// QoS mostly intact.
	if res.SLOViolationFraction > 0.1 {
		t.Errorf("QoS violations=%v want <= 0.1", res.SLOViolationFraction)
	}
	// And cheaper than always-XL.
	if res.CostSavingsVs(sim.FixedMaxCost(svc, day1)) <= 0 {
		t.Error("scale-up should save money vs always-xlarge")
	}
	if repo.HitRate() == 0 {
		t.Error("runtime should hit the repository")
	}
}
