package core

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/cloud"
	"repro/internal/metrics"
	"repro/internal/ml"
	"repro/internal/services"
	"repro/internal/trace"
)

// LearnConfig drives DejaVu's learning phase (paper §3.3–3.4): profile
// every workload encountered during the initial monitoring period,
// select the signature metrics, cluster workloads into classes, tune
// once per class, and train the runtime classifier.
type LearnConfig struct {
	// Profiler collects signatures.
	Profiler *Profiler
	// Tuner maps workload classes to preferred allocations.
	Tuner Tuner
	// Workloads are the workloads seen during the learning window
	// (e.g. 24 hourly workloads of the traces' first day).
	Workloads []services.Workload
	// TrialsPerWorkload is how many signature samples to take per
	// workload (default 3).
	TrialsPerWorkload int
	// ProfileWindow is the per-trial sampling window during
	// learning (default 5 minutes). Learning monitors the full
	// event catalog, which oversubscribes the HPC registers; long
	// windows average the multiplexing noise out. Runtime lookups
	// use the short 10 s window on the few selected events instead.
	ProfileWindow time.Duration
	// MinK and MaxK bound the automatic cluster count search
	// (defaults 2 and 6).
	MinK, MaxK int
	// Classifier selects the runtime model: "c45" (default, the
	// paper's J48) or "bayes".
	Classifier string
	// CertaintyThreshold is the cache-hit confidence floor
	// (default 0.6).
	CertaintyThreshold float64
	// NoveltyTolerance inflates each class's training radius for the
	// unforeseen-workload check (default 2.0).
	NoveltyTolerance float64
	// MinNoveltyRadius floors the radius so singleton clusters (the
	// paper's peak-hour class) still absorb measurement noise
	// (default 1.0 standardized units).
	MinNoveltyRadius float64
	// Rng drives clustering restarts and cross-validation; required.
	// It is consumed only for derived per-run seeds, so learning
	// results do not depend on Workers.
	Rng *rand.Rand
	// Workers bounds the clustering fan-out (restarts × candidate k
	// on the shared internal/parallel pool); 0 means GOMAXPROCS. The
	// fleet control plane sets this when several service templates
	// learn concurrently so the pools don't oversubscribe the
	// machine.
	Workers int
}

func (c *LearnConfig) defaults() error {
	if c.Profiler == nil {
		return errors.New("core: LearnConfig.Profiler must be set")
	}
	if c.Tuner == nil {
		return errors.New("core: LearnConfig.Tuner must be set")
	}
	if len(c.Workloads) == 0 {
		return errors.New("core: no workloads to learn from")
	}
	if c.Rng == nil {
		return errors.New("core: LearnConfig.Rng must be set")
	}
	if c.TrialsPerWorkload <= 0 {
		c.TrialsPerWorkload = 3
	}
	if c.ProfileWindow <= 0 {
		c.ProfileWindow = 5 * time.Minute
	}
	if c.MinK <= 0 {
		c.MinK = 2
	}
	if c.MaxK <= 0 {
		c.MaxK = 6
	}
	if c.Classifier == "" {
		c.Classifier = "c45"
	}
	if c.Classifier != "c45" && c.Classifier != "bayes" {
		return fmt.Errorf("core: unknown classifier %q", c.Classifier)
	}
	if c.CertaintyThreshold == 0 {
		c.CertaintyThreshold = 0.6
	}
	if c.NoveltyTolerance == 0 {
		c.NoveltyTolerance = 2.0
	}
	if c.MinNoveltyRadius == 0 {
		c.MinNoveltyRadius = 1.0
	}
	return nil
}

// LearnReport summarizes the learning phase.
type LearnReport struct {
	// NumWorkloads is the number of distinct workloads profiled.
	NumWorkloads int
	// Classes is the number of workload classes discovered.
	Classes int
	// SignatureEvents is the selected metric tuple.
	SignatureEvents []metrics.Event
	// CFSMerit is the merit of the selected subset.
	CFSMerit float64
	// WorkloadClass maps each input workload to its class (majority
	// over trials).
	WorkloadClass []int
	// Representatives maps each class to the index of the workload
	// tuned for it (nearest to the centroid).
	Representatives []int
	// Allocations maps each class to its tuned allocation.
	Allocations []cloud.Allocation
	// TuningTime is the total time the Tuner spent, i.e. the
	// overhead clustering amortizes (one tuning run per class, not
	// per workload).
	TuningTime time.Duration
	// ClassifierAccuracy is the cross-validated accuracy of the
	// runtime classifier on the training signatures.
	ClassifierAccuracy float64
}

// Learn runs the learning phase and returns the populated repository.
func Learn(cfg LearnConfig) (*Repository, *LearnReport, error) {
	if err := cfg.defaults(); err != nil {
		return nil, nil, err
	}
	allEvents := metrics.AllEvents()

	// Phase 1 — profile everything: "DejaVu collects the low-level
	// metrics... we form the dataset by collecting all HPC and
	// xentop-reported metric values."
	full := ml.NewDataset(eventNames(allEvents))
	for _, w := range cfg.Workloads {
		sigs, err := cfg.Profiler.ProfileN(w, allEvents, cfg.TrialsPerWorkload, cfg.ProfileWindow)
		if err != nil {
			return nil, nil, fmt.Errorf("core: profiling %v: %w", w, err)
		}
		for _, s := range sigs {
			if err := full.Add(s.Values, 0); err != nil {
				return nil, nil, err
			}
		}
	}

	// Phase 2 — preliminary clustering on all metrics to obtain
	// labels for feature selection. Mean normalization (not
	// standardization) is essential here: standardizing would blow
	// the measurement noise of workload-independent counters up to
	// unit variance and swamp the real structure across the 60+
	// attribute dimensions.
	fullN := ml.MeanNormalize(full)
	pre, err := ml.KMeansAuto(fullN.X, cfg.MinK, cfg.MaxK, ml.KMeansConfig{Rng: cfg.Rng, Workers: cfg.Workers})
	if err != nil {
		return nil, nil, fmt.Errorf("core: preliminary clustering: %w", err)
	}
	for i := range fullN.Y {
		fullN.Y[i] = pre.Assignments[i]
	}

	// Phase 3 — CFS feature selection (the paper's CfsSubsetEval +
	// GreedyStepwise) to pick the signature metrics.
	cfsRes, err := ml.CFSSelect(fullN, ml.CFSConfig{})
	if err != nil {
		return nil, nil, fmt.Errorf("core: feature selection: %w", err)
	}
	sigEvents := make([]metrics.Event, len(cfsRes.Selected))
	for i, idx := range cfsRes.Selected {
		sigEvents[i] = allEvents[idx]
	}

	// Phase 4 — final clustering in signature space.
	proj, err := full.Project(cfsRes.Selected)
	if err != nil {
		return nil, nil, err
	}
	std, err := ml.FitStandardizer(proj)
	if err != nil {
		return nil, nil, err
	}
	projZ := std.TransformDataset(proj)
	clusters, err := ml.KMeansAuto(projZ.X, cfg.MinK, cfg.MaxK, ml.KMeansConfig{Rng: cfg.Rng, Workers: cfg.Workers})
	if err != nil {
		return nil, nil, fmt.Errorf("core: clustering: %w", err)
	}
	for i := range projZ.Y {
		projZ.Y[i] = clusters.Assignments[i]
	}

	// Novelty radii: per class, max training distance to centroid,
	// inflated and floored.
	radii := make([]float64, clusters.K)
	for i, row := range projZ.X {
		c := clusters.Assignments[i]
		if d := ml.EuclideanDistance(row, clusters.Centroids[c]); d > radii[c] {
			radii[c] = d
		}
	}
	for c := range radii {
		radii[c] *= cfg.NoveltyTolerance
		if radii[c] < cfg.MinNoveltyRadius {
			radii[c] = cfg.MinNoveltyRadius
		}
	}

	// Phase 5 — train the runtime classifier on labeled signatures.
	train := trainFunc(cfg.Classifier)
	clf, err := train(projZ)
	if err != nil {
		return nil, nil, fmt.Errorf("core: training classifier: %w", err)
	}
	accuracy := 1.0
	if projZ.Len() >= 10 {
		if cm, err := ml.CrossValidate(projZ, 5, train, cfg.Rng); err == nil {
			accuracy = cm.Accuracy()
		}
	}

	repo, err := NewRepository(sigEvents, std, clf, clusters.Centroids, radii, cfg.CertaintyThreshold)
	if err != nil {
		return nil, nil, err
	}

	// Phase 6 — tune once per class, using the workload whose
	// signature row sits closest to the class centroid ("it typically
	// chooses the instance that is closest to the cluster's
	// centroid").
	nearestRows := ml.NearestRowToCentroid(projZ.X, clusters)
	report := &LearnReport{
		NumWorkloads:    len(cfg.Workloads),
		Classes:         clusters.K,
		SignatureEvents: sigEvents,
		CFSMerit:        cfsRes.Merit,
		Representatives: make([]int, clusters.K),
		Allocations:     make([]cloud.Allocation, clusters.K),
	}
	for class, rowIdx := range nearestRows {
		if rowIdx < 0 {
			return nil, nil, fmt.Errorf("core: class %d has no members", class)
		}
		wIdx := rowIdx / cfg.TrialsPerWorkload
		report.Representatives[class] = wIdx
		alloc, err := cfg.Tuner.Tune(cfg.Workloads[wIdx], 0)
		if err != nil {
			return nil, nil, fmt.Errorf("core: tuning class %d: %w", class, err)
		}
		report.TuningTime += cfg.Tuner.Duration()
		if err := repo.Put(class, 0, alloc); err != nil {
			return nil, nil, err
		}
		report.Allocations[class] = alloc
	}

	// Per-workload class via majority vote over its trials.
	report.WorkloadClass = make([]int, len(cfg.Workloads))
	for wIdx := range cfg.Workloads {
		votes := make(map[int]int)
		for t := 0; t < cfg.TrialsPerWorkload; t++ {
			votes[clusters.Assignments[wIdx*cfg.TrialsPerWorkload+t]]++
		}
		best, bestN := 0, -1
		for c, n := range votes {
			if n > bestN {
				best, bestN = c, n
			}
		}
		report.WorkloadClass[wIdx] = best
	}
	report.ClassifierAccuracy = accuracy
	return repo, report, nil
}

// WorkloadsFromTrace converts a load trace (already scaled to client
// counts) into one workload per sample with the given mix — the
// "24 workloads (an instance per hour)" the learning phase consumes.
func WorkloadsFromTrace(tr *trace.Trace, mix services.Mix) []services.Workload {
	out := make([]services.Workload, tr.Len())
	for i, clients := range tr.Loads {
		out[i] = services.Workload{Clients: clients, Mix: mix}
	}
	return out
}

func trainFunc(kind string) ml.TrainFunc {
	if kind == "bayes" {
		return func(d *ml.Dataset) (ml.Classifier, error) { return ml.NewNaiveBayes(d) }
	}
	return func(d *ml.Dataset) (ml.Classifier, error) { return ml.NewC45(d, ml.C45Config{}) }
}

func eventNames(evs []metrics.Event) []string {
	out := make([]string, len(evs))
	for i, ev := range evs {
		out[i] = string(ev)
	}
	return out
}
