package core

import (
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/trace"

	"repro/internal/services"
)

// TestOnDemandProfilingReactsFaster: a load spike in the middle of an
// hour. Periodic-only profiling adapts at the next hour boundary;
// on-demand profiling adapts within its cooldown.
func TestOnDemandProfilingReactsFaster(t *testing.T) {
	run := func(onDemand bool) *sim.Result {
		rng := trace.SynthConfig{} // deterministic trace, no jitter
		_ = rng
		svc := services.NewCassandra()
		tr := trace.Messenger(trace.SynthConfig{}).ScaleTo(480)
		ctl, _ := buildDejaVuWithOptions(t, tr, 51, onDemand)

		// Flat shoulder load, then a spike to plateau level at
		// minute 30 (mid-hour).
		loads := make([]float64, 120)
		for i := range loads {
			if i < 30 {
				loads[i] = 170
			} else {
				loads[i] = 330
			}
		}
		spike := &trace.Trace{Name: "midhour-spike", Step: time.Minute, Loads: loads}
		res, err := sim.Run(sim.Config{
			Service:    svc,
			Trace:      spike,
			Controller: ctl,
			Initial:    svc.MaxAllocation(),
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	fast := run(true)
	slow := run(false)

	violationsIn := func(res *sim.Result, from, to int) int {
		n := 0
		for i := from; i < to && i < len(res.Records); i++ {
			if res.Records[i].SLOViolated {
				n++
			}
		}
		return n
	}
	// Between the spike (minute 30) and the next periodic round
	// (minute 60), the on-demand controller must violate much less.
	fastBad := violationsIn(fast, 30, 60)
	slowBad := violationsIn(slow, 30, 60)
	if fastBad >= slowBad {
		t.Errorf("on-demand violations %d should be below periodic-only %d", fastBad, slowBad)
	}
	if slowBad < 15 {
		t.Errorf("periodic-only should suffer most of the half hour, got %d violated minutes", slowBad)
	}
	if fastBad > 10 {
		t.Errorf("on-demand should recover within its cooldown, got %d violated minutes", fastBad)
	}
}

// buildDejaVuWithOptions mirrors buildDejaVu with the on-demand flag.
func buildDejaVuWithOptions(t *testing.T, tr *trace.Trace, seed int64, onDemand bool) (*Controller, *Repository) {
	t.Helper()
	ctl, repo := buildDejaVu(t, tr, seed, false)
	if !onDemand {
		return ctl, repo
	}
	cfg := ctl.cfg
	cfg.OnDemandProfiling = true
	out, err := NewController(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return out, repo
}
