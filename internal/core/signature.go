// Package core implements DejaVu itself: workload signatures, the
// profiler, the learning phase (feature selection, clustering, tuning),
// the signature repository (the "DejaVu cache"), the interference
// index, and the runtime controller that reuses cached resource
// allocations to adapt to workload changes in seconds instead of
// minutes (paper §3).
package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/services"
)

// Signature is a workload signature: the ordered N-tuple of normalized
// metric values WS = {m1, m2, ..., mN} from paper Eq. 1.
type Signature struct {
	// Events names the metrics, in order.
	Events []metrics.Event
	// Values holds the per-second normalized readings, aligned with
	// Events.
	Values []float64
}

// Validate checks structural consistency.
func (s *Signature) Validate() error {
	if len(s.Events) == 0 {
		return errors.New("core: empty signature")
	}
	if len(s.Events) != len(s.Values) {
		return fmt.Errorf("core: signature has %d events but %d values", len(s.Events), len(s.Values))
	}
	return nil
}

// Profiler is DejaVu's profiling environment: a dedicated machine
// hosting cloned VM instances that serve duplicated requests while
// low-level metrics are collected without disturbing production
// (paper §3.2.2). In this reproduction the clone is a
// services.ProfileSource and the measurement path a metrics.Monitor.
type Profiler struct {
	// Service is the profiled service (the clone's behaviour model).
	Service services.Service
	// RefInstances fixes the per-instance load the clone sees. The
	// proxy duplicates the traffic of one production instance; to
	// keep signatures comparable across allocation changes, DejaVu
	// samples a fixed 1/RefInstances share of total traffic.
	RefInstances int
	// Window is the signature collection time (paper: ~10 s).
	Window time.Duration
	// Monitor reads the counters when the full catalog is profiled
	// (the learning phase).
	Monitor *metrics.Monitor

	// rng seeds per-query monitors.
	rng *rand.Rand

	// Reusable hot-path state. A profiler serves one controller
	// goroutine, so the scratch needs no locking: src avoids boxing a
	// fresh source per sample, and queryMon caches the monitor built
	// for the last explicit event set (keyed by slice identity —
	// callers pass the same signature tuple every round). catalogEvs
	// remembers an explicitly-passed event slice recognized as the
	// full catalog, for which the profiler's own Monitor is reused
	// instead of a duplicate (the learning phase passes
	// metrics.AllEvents() on every trial of every workload).
	src        services.ProfileSource
	queryMon   *metrics.Monitor
	queryEvs   []metrics.Event
	catalogEvs []metrics.Event
}

// DefaultSignatureWindow is the paper's ~10 s signature collection
// time ("DejaVu's reaction time is about 10 seconds in the case of a
// cache hit").
const DefaultSignatureWindow = 10 * time.Second

// catalogEvents returns the process-wide shared copy of the full event
// catalog. The catalog is immutable, and a Monitor only reads its
// Events slice (per-monitor index tables are keyed by slice identity),
// so every profiler can alias one copy — a fleet run builds one
// profiler per VM, and the per-profiler AllEvents copy was pure churn.
func catalogEvents() []metrics.Event {
	catalogOnce.Do(func() { catalog = metrics.AllEvents() })
	return catalog
}

var (
	catalogOnce sync.Once
	catalog     []metrics.Event
)

// NewProfiler builds a profiler monitoring the full event catalog (the
// learning phase collects "all HPC and xentop-reported metric values").
func NewProfiler(svc services.Service, rng *rand.Rand) (*Profiler, error) {
	if svc == nil {
		return nil, errors.New("core: nil service")
	}
	if rng == nil {
		return nil, errors.New("metrics: rng must be set")
	}
	// Assembled literally (same fields NewMonitor fills) so the shared
	// catalog slice is aliased, not re-copied per profiler. The Bank is
	// still private — tests and experiments adjust a profiling host's
	// registers through p.Monitor.Bank.
	mon := &metrics.Monitor{
		Events:    catalogEvents(),
		Bank:      metrics.DefaultBank(),
		BaseNoise: 0.01,
		Rng:       rng,
	}
	refInstances := svc.MaxAllocation().Count
	if refInstances <= 0 {
		refInstances = 1
	}
	return &Profiler{
		Service:      svc,
		RefInstances: refInstances,
		Window:       DefaultSignatureWindow,
		Monitor:      mon,
		rng:          rng,
	}, nil
}

// Profile collects one signature over the profiler's runtime window
// (~10 s) for the given workload, reading the given events (defaults
// to the monitor's full set when events is nil).
func (p *Profiler) Profile(w services.Workload, events []metrics.Event) (*Signature, error) {
	return p.ProfileWindow(w, events, p.Window)
}

// ProfileWindow is Profile with an explicit sampling window. The
// learning phase uses long windows (minutes per workload): monitoring
// the full 60-event catalog through 4 registers requires heavy
// time-division multiplexing, whose accuracy penalty only averages
// out over a long sample. The runtime fast path samples just the
// selected signature events, which fit the registers, so 10 s
// suffices there.
func (p *Profiler) ProfileWindow(w services.Workload, events []metrics.Event, window time.Duration) (*Signature, error) {
	var sig Signature
	if err := p.ProfileInto(w, events, window, &sig); err != nil {
		return nil, err
	}
	// Detach from profiler-owned storage: ProfileWindow hands
	// ownership of the signature to the caller.
	sig.Events = append([]metrics.Event(nil), sig.Events...)
	return &sig, nil
}

// ProfileInto is the allocation-free fast path of ProfileWindow: it
// reuses sig's value buffer and the monitor built for the last event
// set, so a steady-state profiling round performs no heap allocation.
// sig.Events aliases the profiler's event set (events when non-nil,
// the full-catalog monitor's otherwise); callers that retain the
// signature beyond the next ProfileInto call must copy it. The noise
// stream and arithmetic are identical to ProfileWindow, so fixed-seed
// results are bit-identical to the legacy path.
func (p *Profiler) ProfileInto(w services.Workload, events []metrics.Event, window time.Duration, sig *Signature) error {
	p.src.Service = p.Service
	p.src.Workload = w
	p.src.Instances = p.RefInstances
	// Program the registers with exactly the requested events: a
	// short runtime sample of a handful of signature events fits the
	// registers and stays clean, while sampling the whole catalog
	// would multiplex and blur it.
	mon := p.Monitor
	evs := events
	switch {
	case evs == nil:
		evs = p.Monitor.Events
	case sameEvents(evs, p.catalogEvs):
		// Previously recognized full-catalog slice: p.Monitor already
		// monitors exactly these events; nothing to build or mirror.
	default:
		if !sameEvents(evs, p.queryEvs) {
			if eventsEqual(evs, p.Monitor.Events) {
				// The caller passed the full catalog explicitly (the
				// learning phase does, for every trial): reuse the
				// profiler's own monitor — and its already-resolved
				// event index tables — instead of constructing a
				// duplicate per learning round.
				p.catalogEvs = evs
				break
			}
			m, err := metrics.NewMonitor(evs, p.rng)
			if err != nil {
				return err
			}
			p.queryMon, p.queryEvs = m, evs
		}
		mon = p.queryMon
		// The profiling host's register bank and noise floor may be
		// adjusted between rounds; mirror them on every sample like
		// the per-call monitors used to.
		mon.Bank = p.Monitor.Bank
		mon.BaseNoise = p.Monitor.BaseNoise
	}
	if cap(sig.Values) < len(evs) {
		sig.Values = make([]float64, len(evs))
	}
	sig.Values = sig.Values[:len(evs)]
	if err := mon.SampleVector(&p.src, window, sig.Values); err != nil {
		return err
	}
	sig.Events = evs
	return nil
}

// sameEvents reports whether two event slices share identity (same
// backing array and length) — the cheap cache key for the query
// monitor. Callers that rebuild their event slice per call simply miss
// the cache and pay the legacy construction cost.
func sameEvents(a, b []metrics.Event) bool {
	return len(a) == len(b) && len(a) > 0 && &a[0] == &b[0]
}

// eventsEqual compares two event slices by content.
func eventsEqual(a, b []metrics.Event) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ProfileN collects n signatures over the given window (the paper
// runs "5 trials for each volume" when validating signatures). All n
// signatures share one detached copy of the event tuple (they are
// read-only views of the same metric set), and the trials reuse the
// profiler's cached monitor, so the learning phase no longer copies
// the 60-event catalog once per trial of every workload. The noise
// stream is identical to n individual ProfileWindow calls.
func (p *Profiler) ProfileN(w services.Workload, events []metrics.Event, n int, window time.Duration) ([]*Signature, error) {
	if n <= 0 {
		return nil, errors.New("core: n must be positive")
	}
	out := make([]*Signature, 0, n)
	var shared []metrics.Event
	for i := 0; i < n; i++ {
		var sig Signature
		if err := p.ProfileInto(w, events, window, &sig); err != nil {
			return nil, err
		}
		if shared == nil {
			shared = append([]metrics.Event(nil), sig.Events...)
		}
		sig.Events = shared
		out = append(out, &sig)
	}
	return out, nil
}

// IsolationPerf returns the performance the profiling environment
// measures for workload w under the given capacity — free of
// co-located tenant interference by construction. The interference
// index contrasts production performance with this value (paper Eq. 2).
func (p *Profiler) IsolationPerf(w services.Workload, capacity float64) services.Perf {
	return p.Service.Perf(w, capacity)
}
