// Package core implements DejaVu itself: workload signatures, the
// profiler, the learning phase (feature selection, clustering, tuning),
// the signature repository (the "DejaVu cache"), the interference
// index, and the runtime controller that reuses cached resource
// allocations to adapt to workload changes in seconds instead of
// minutes (paper §3).
package core

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/metrics"
	"repro/internal/services"
)

// Signature is a workload signature: the ordered N-tuple of normalized
// metric values WS = {m1, m2, ..., mN} from paper Eq. 1.
type Signature struct {
	// Events names the metrics, in order.
	Events []metrics.Event
	// Values holds the per-second normalized readings, aligned with
	// Events.
	Values []float64
}

// Validate checks structural consistency.
func (s *Signature) Validate() error {
	if len(s.Events) == 0 {
		return errors.New("core: empty signature")
	}
	if len(s.Events) != len(s.Values) {
		return fmt.Errorf("core: signature has %d events but %d values", len(s.Events), len(s.Values))
	}
	return nil
}

// Profiler is DejaVu's profiling environment: a dedicated machine
// hosting cloned VM instances that serve duplicated requests while
// low-level metrics are collected without disturbing production
// (paper §3.2.2). In this reproduction the clone is a
// services.ProfileSource and the measurement path a metrics.Monitor.
type Profiler struct {
	// Service is the profiled service (the clone's behaviour model).
	Service services.Service
	// RefInstances fixes the per-instance load the clone sees. The
	// proxy duplicates the traffic of one production instance; to
	// keep signatures comparable across allocation changes, DejaVu
	// samples a fixed 1/RefInstances share of total traffic.
	RefInstances int
	// Window is the signature collection time (paper: ~10 s).
	Window time.Duration
	// Monitor reads the counters when the full catalog is profiled
	// (the learning phase).
	Monitor *metrics.Monitor

	// rng seeds per-query monitors.
	rng *rand.Rand
}

// DefaultSignatureWindow is the paper's ~10 s signature collection
// time ("DejaVu's reaction time is about 10 seconds in the case of a
// cache hit").
const DefaultSignatureWindow = 10 * time.Second

// NewProfiler builds a profiler monitoring the full event catalog (the
// learning phase collects "all HPC and xentop-reported metric values").
func NewProfiler(svc services.Service, rng *rand.Rand) (*Profiler, error) {
	if svc == nil {
		return nil, errors.New("core: nil service")
	}
	mon, err := metrics.NewMonitor(metrics.AllEvents(), rng)
	if err != nil {
		return nil, err
	}
	refInstances := svc.MaxAllocation().Count
	if refInstances <= 0 {
		refInstances = 1
	}
	return &Profiler{
		Service:      svc,
		RefInstances: refInstances,
		Window:       DefaultSignatureWindow,
		Monitor:      mon,
		rng:          rng,
	}, nil
}

// Profile collects one signature over the profiler's runtime window
// (~10 s) for the given workload, reading the given events (defaults
// to the monitor's full set when events is nil).
func (p *Profiler) Profile(w services.Workload, events []metrics.Event) (*Signature, error) {
	return p.ProfileWindow(w, events, p.Window)
}

// ProfileWindow is Profile with an explicit sampling window. The
// learning phase uses long windows (minutes per workload): monitoring
// the full 60-event catalog through 4 registers requires heavy
// time-division multiplexing, whose accuracy penalty only averages
// out over a long sample. The runtime fast path samples just the
// selected signature events, which fit the registers, so 10 s
// suffices there.
func (p *Profiler) ProfileWindow(w services.Workload, events []metrics.Event, window time.Duration) (*Signature, error) {
	src := services.ProfileSource{Service: p.Service, Workload: w, Instances: p.RefInstances}
	// Program the registers with exactly the requested events: a
	// short runtime sample of a handful of signature events fits the
	// registers and stays clean, while sampling the whole catalog
	// would multiplex and blur it.
	mon := p.Monitor
	evs := events
	if evs == nil {
		evs = p.Monitor.Events
	} else {
		var err error
		if mon, err = metrics.NewMonitor(evs, p.rng); err != nil {
			return nil, err
		}
		mon.Bank = p.Monitor.Bank
		mon.BaseNoise = p.Monitor.BaseNoise
	}
	sample, err := mon.Sample(src, window)
	if err != nil {
		return nil, err
	}
	return &Signature{
		Events: append([]metrics.Event(nil), evs...),
		Values: sample.Vector(evs),
	}, nil
}

// ProfileN collects n signatures over the given window (the paper
// runs "5 trials for each volume" when validating signatures).
func (p *Profiler) ProfileN(w services.Workload, events []metrics.Event, n int, window time.Duration) ([]*Signature, error) {
	if n <= 0 {
		return nil, errors.New("core: n must be positive")
	}
	out := make([]*Signature, 0, n)
	for i := 0; i < n; i++ {
		s, err := p.ProfileWindow(w, events, window)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// IsolationPerf returns the performance the profiling environment
// measures for workload w under the given capacity — free of
// co-located tenant interference by construction. The interference
// index contrasts production performance with this value (paper Eq. 2).
func (p *Profiler) IsolationPerf(w services.Workload, capacity float64) services.Perf {
	return p.Service.Perf(w, capacity)
}
