package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"repro/internal/cloud"
	"repro/internal/metrics"
	"repro/internal/ml"
)

// Repository persistence. A cache is only as useful as its lifetime:
// persisting the learned signature space, classifier, and allocation
// entries lets DejaVu survive restarts of the management plane and
// ship a learned repository to another deployment of the same service.

// repositoryState is the serialized form.
type repositoryState struct {
	Version            int             `json:"version"`
	Events             []metrics.Event `json:"events"`
	Means              []float64       `json:"means"`
	Stds               []float64       `json:"stds"`
	Classifier         json.RawMessage `json:"classifier"`
	Centroids          [][]float64     `json:"centroids"`
	NoveltyRadius      []float64       `json:"novelty_radius"`
	CertaintyThreshold float64         `json:"certainty_threshold"`
	Entries            []entryState    `json:"entries"`
}

type entryState struct {
	Class    int    `json:"class"`
	Bucket   int    `json:"bucket"`
	TypeName string `json:"type"`
	Count    int    `json:"count"`
}

const repositoryStateVersion = 1

// Save serializes the repository (signature space, classifier, novelty
// model, and every cached allocation) as JSON.
func (r *Repository) Save(w io.Writer) error {
	clf, err := ml.MarshalClassifier(r.classifier)
	if err != nil {
		return fmt.Errorf("core: marshal classifier: %w", err)
	}
	st := repositoryState{
		Version:            repositoryStateVersion,
		Events:             r.events,
		Means:              r.standardizer.Means,
		Stds:               r.standardizer.Stds,
		Classifier:         clf,
		Centroids:          r.centroids,
		NoveltyRadius:      r.noveltyRadius,
		CertaintyThreshold: r.certaintyThreshold,
	}
	for _, e := range r.Snapshot() {
		st.Entries = append(st.Entries, entryState{
			Class: e.Class, Bucket: e.Bucket,
			TypeName: e.Allocation.Type.Name, Count: e.Allocation.Count,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&st)
}

// SaveRepository is the function twin of (*Repository).Save, mirroring
// LoadRepository: it serializes the repository's signature space,
// classifier, novelty model, and cached allocations as JSON.
func SaveRepository(r *Repository, w io.Writer) error {
	if r == nil {
		return errors.New("core: nil repository")
	}
	return r.Save(w)
}

// LoadRepository restores a repository previously written by Save.
func LoadRepository(rd io.Reader) (*Repository, error) {
	var st repositoryState
	if err := json.NewDecoder(rd).Decode(&st); err != nil {
		return nil, fmt.Errorf("core: decode repository: %w", err)
	}
	if st.Version != repositoryStateVersion {
		return nil, fmt.Errorf("core: unsupported repository version %d", st.Version)
	}
	if len(st.Means) != len(st.Events) || len(st.Stds) != len(st.Events) {
		return nil, errors.New("core: standardizer width mismatch")
	}
	clf, err := ml.UnmarshalClassifier(st.Classifier)
	if err != nil {
		return nil, fmt.Errorf("core: restore classifier: %w", err)
	}
	std := &ml.Standardizer{Means: st.Means, Stds: st.Stds}
	repo, err := NewRepository(st.Events, std, clf, st.Centroids, st.NoveltyRadius, st.CertaintyThreshold)
	if err != nil {
		return nil, err
	}
	for _, e := range st.Entries {
		typ, err := cloud.TypeByName(e.TypeName)
		if err != nil {
			return nil, fmt.Errorf("core: entry class %d bucket %d: %w", e.Class, e.Bucket, err)
		}
		if err := repo.Put(e.Class, e.Bucket, cloud.Allocation{Type: typ, Count: e.Count}); err != nil {
			return nil, err
		}
	}
	return repo, nil
}
