package core

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/services"
)

// TestProfileNMatchesProfileWindow pins the optimization contract:
// ProfileN's shared-event-tuple fast path must consume the noise
// stream exactly like n individual ProfileWindow calls, so learning
// results at a fixed seed are unchanged.
func TestProfileNMatchesProfileWindow(t *testing.T) {
	svc := services.NewCassandra()
	w := services.Workload{Clients: 300, Mix: svc.DefaultMix()}
	events := metrics.AllEvents()
	const n, window = 5, 2 * time.Minute

	fastProf, err := NewProfiler(svc, rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	fast, err := fastProf.ProfileN(w, events, n, window)
	if err != nil {
		t.Fatal(err)
	}

	refProf, err := NewProfiler(svc, rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		ref, err := refProf.ProfileWindow(w, events, window)
		if err != nil {
			t.Fatal(err)
		}
		if len(fast[i].Values) != len(ref.Values) {
			t.Fatalf("trial %d: %d values vs %d", i, len(fast[i].Values), len(ref.Values))
		}
		for j := range ref.Values {
			if fast[i].Values[j] != ref.Values[j] {
				t.Fatalf("trial %d value %d: fast %v != reference %v", i, j, fast[i].Values[j], ref.Values[j])
			}
		}
		if !eventsEqual(fast[i].Events, ref.Events) {
			t.Fatalf("trial %d: event tuples diverged", i)
		}
	}

	// The shared tuple must be detached from profiler-owned storage
	// and common to all trials.
	if &fast[0].Events[0] != &fast[1].Events[0] {
		t.Error("trials should share one event tuple copy")
	}
	if &fast[0].Events[0] == &events[0] {
		t.Error("shared tuple should be detached from the caller's slice")
	}
}

// profileNReference replicates the pre-optimization ProfileN: one
// duplicate monitor construction per profiling round (re-resolving the
// full event catalog) plus a detached copy of the event tuple per
// trial — the costs the fast path eliminates.
func profileNReference(p *Profiler, w services.Workload, events []metrics.Event, n int, window time.Duration) ([]*Signature, error) {
	mon, err := metrics.NewMonitor(events, p.rng)
	if err != nil {
		return nil, err
	}
	mon.Bank = p.Monitor.Bank
	mon.BaseNoise = p.Monitor.BaseNoise
	src := services.ProfileSource{Service: p.Service, Workload: w, Instances: p.RefInstances}
	out := make([]*Signature, 0, n)
	for i := 0; i < n; i++ {
		sig := &Signature{
			Events: append([]metrics.Event(nil), events...),
			Values: make([]float64, len(events)),
		}
		if err := mon.SampleVector(&src, window, sig.Values); err != nil {
			return nil, err
		}
		out = append(out, sig)
	}
	return out, nil
}

// BenchmarkProfileN contrasts the learning phase's per-workload
// profiling round before and after the monitor-reuse optimization.
// Numbers feed docs/BENCHMARKS.md.
func BenchmarkProfileN(b *testing.B) {
	svc := services.NewCassandra()
	w := services.Workload{Clients: 300, Mix: svc.DefaultMix()}
	events := metrics.AllEvents()
	const n, window = 3, 5 * time.Minute

	b.Run("fast", func(b *testing.B) {
		prof, err := NewProfiler(svc, rand.New(rand.NewSource(3)))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := prof.ProfileN(w, events, n, window); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("reference", func(b *testing.B) {
		prof, err := NewProfiler(svc, rand.New(rand.NewSource(3)))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := profileNReference(prof, w, events, n, window); err != nil {
				b.Fatal(err)
			}
		}
	})
}
