package core

import (
	"errors"
	"time"

	"repro/internal/services"
)

// Batch diagnosis — the paper's §3.7 mechanism: "Upon an SLO
// violation, DejaVu would run a subset of tasks in isolation to
// determine the interference index. This computation would also expose
// cases in which interference is not significant and the user simply
// mis-estimated the expected running times."

// BatchDiagnosis is the outcome of a batch SLO investigation.
type BatchDiagnosis int

// The possible diagnoses.
const (
	// BatchHealthy: the observed task durations meet the SLO.
	BatchHealthy BatchDiagnosis = iota
	// BatchInterference: tasks run significantly slower in
	// production than in isolation — co-located tenants are to
	// blame; provision more resources.
	BatchInterference
	// BatchMisestimated: isolation runs are as slow as production,
	// so the user's expected running time was simply optimistic.
	BatchMisestimated
)

// String renders the diagnosis.
func (d BatchDiagnosis) String() string {
	switch d {
	case BatchHealthy:
		return "healthy"
	case BatchInterference:
		return "interference"
	case BatchMisestimated:
		return "mis-estimated expectation"
	default:
		return "unknown"
	}
}

// BatchReport carries the diagnosis and the measured index.
type BatchReport struct {
	Diagnosis BatchDiagnosis
	// Index is production task duration over isolation task
	// duration (Eq. 2 with running time as the performance level).
	Index float64
	// Production and Isolation are the measured per-task durations.
	Production time.Duration
	Isolation  time.Duration
}

// batchInterferenceThreshold: index above this blames interference.
const batchInterferenceThreshold = 1.15

// DiagnoseBatch investigates a batch job's SLO violation. production
// is the observed per-task duration in the shared environment;
// isolation is the duration of the probe subset re-run in the
// profiling environment.
func DiagnoseBatch(job *services.BatchJob, production, isolation time.Duration) (*BatchReport, error) {
	if job == nil {
		return nil, errors.New("core: nil batch job")
	}
	if production <= 0 || isolation <= 0 {
		return nil, errors.New("core: durations must be positive")
	}
	rep := &BatchReport{
		Production: production,
		Isolation:  isolation,
		Index:      float64(production) / float64(isolation),
	}
	if rep.Index < 1 {
		rep.Index = 1
	}
	switch {
	case job.SLOMet(production):
		rep.Diagnosis = BatchHealthy
	case rep.Index > batchInterferenceThreshold:
		rep.Diagnosis = BatchInterference
	default:
		rep.Diagnosis = BatchMisestimated
	}
	return rep, nil
}

// ProbeBatchIsolation simulates re-running a subset of tasks in the
// isolated profiling environment with the given per-task capacity:
// the profiler is interference-free by construction.
func ProbeBatchIsolation(job *services.BatchJob, unitsPerTask float64) time.Duration {
	return job.TaskDuration(unitsPerTask, 0)
}
