package core

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/cloud"
	"repro/internal/metrics"
	"repro/internal/ml"
	"repro/internal/obs"
)

// InterferenceBucketWidth discretizes the estimated co-located
// contention *fraction* into repository buckets: bucket 0 is no
// interference, each further bucket covers 5% of stolen capacity.
// Bucketing the fraction rather than the raw performance index
// matters: the index shrinks once a compensating allocation deploys,
// while the underlying contention fraction is a property of the
// environment and stays put — so fraction-keyed entries remain valid
// across allocation changes.
const InterferenceBucketWidth = 0.05

// maxInterferenceBucket caps the bucket range (0.9 stolen capacity).
const maxInterferenceBucket = 18

// BucketForFraction maps an estimated contention fraction in [0, 1)
// to a repository bucket.
func BucketForFraction(fraction float64) int {
	if fraction <= 0 {
		return 0
	}
	b := int(math.Ceil(fraction / InterferenceBucketWidth))
	if b > maxInterferenceBucket {
		b = maxInterferenceBucket
	}
	return b
}

// repoShards is the number of entry-map shards. Entries are sharded by
// workload class, so a fleet of controllers whose workloads happen to
// classify differently contend on different locks; 16 shards cover the
// paper's 2–6 classes with headroom for larger clusterings.
const repoShards = 16

// Repository is the DejaVu cache: workload signatures along with their
// preferred resource allocations, keyed by workload class and
// interference bucket (paper §3.4, §3.6). Lookups classify the
// incoming signature and report a certainty level; low certainty means
// the workload "has changed over time and the current clustering is no
// longer relevant".
//
// The repository is safe for concurrent use by many controllers (the
// fleet control plane shares one repository across every VM of a
// service template): the learned artifacts — standardizer, classifier,
// centroids, novelty radii — are immutable after construction, so
// Classify runs lock-free; the allocation entries are sharded by class
// behind per-shard RWMutexes; and the hit/miss statistics are atomics.
type Repository struct {
	// events is the signature metric tuple (ordered).
	events []metrics.Event
	// standardizer maps raw signatures into the learned feature
	// space.
	standardizer *ml.Standardizer
	// classifier assigns signatures to workload classes.
	classifier ml.Classifier
	// centroids are the class centroids in standardized space.
	centroids [][]float64
	// noveltyRadius is the per-class maximum training distance to
	// the centroid, inflated by a tolerance; signatures farther from
	// every centroid are unforeseen workloads.
	noveltyRadius []float64
	// shards hold the (class, interference bucket) -> allocation
	// entries, sharded by class.
	shards [repoShards]repoShard
	// certaintyThreshold is the minimum classifier confidence for a
	// cache hit.
	certaintyThreshold float64
	// rowPool recycles standardize scratch rows so concurrent Classify
	// calls stay allocation-free; entries are *[]float64 of signature
	// width.
	rowPool sync.Pool
	// stats: cache-line-sharded counters, so the per-lookup count from
	// tens of thousands of concurrent controllers never rendezvouses on
	// one cache line (a plain atomic here was a measurable share of the
	// scale benchmarks' cross-core traffic).
	hits, misses obs.Counter
}

// repoShard is one lock-striped slice of the entry map.
type repoShard struct {
	mu      sync.RWMutex
	entries map[repoKey]cloud.Allocation
}

type repoKey struct {
	class  int
	bucket int
}

// shardFor returns the shard holding the given class's entries.
func (r *Repository) shardFor(class int) *repoShard {
	return &r.shards[class%repoShards]
}

// LookupResult is the outcome of a repository lookup.
type LookupResult struct {
	// Class is the matched workload class (-1 on novelty rejection).
	Class int
	// Certainty is the classifier confidence in [0, 1].
	Certainty float64
	// Allocation is the cached preferred allocation; valid only when
	// Hit is true.
	Allocation cloud.Allocation
	// Hit reports whether a usable cached allocation was found.
	Hit bool
	// Unforeseen reports whether the signature looks unlike every
	// learned class (novelty or low certainty).
	Unforeseen bool
}

// NewRepository assembles a repository from learned artifacts. The
// certainty threshold defaults to 0.6 when zero.
func NewRepository(events []metrics.Event, std *ml.Standardizer, clf ml.Classifier,
	centroids [][]float64, noveltyRadius []float64, certaintyThreshold float64) (*Repository, error) {
	if len(events) == 0 {
		return nil, errors.New("core: repository needs signature events")
	}
	if std == nil || clf == nil {
		return nil, errors.New("core: repository needs standardizer and classifier")
	}
	if len(centroids) == 0 || len(centroids) != len(noveltyRadius) {
		return nil, fmt.Errorf("core: %d centroids but %d novelty radii", len(centroids), len(noveltyRadius))
	}
	if certaintyThreshold == 0 {
		certaintyThreshold = 0.6
	}
	width := len(events)
	r := &Repository{
		events:             append([]metrics.Event(nil), events...),
		standardizer:       std,
		classifier:         clf,
		centroids:          centroids,
		noveltyRadius:      append([]float64(nil), noveltyRadius...),
		certaintyThreshold: certaintyThreshold,
	}
	r.rowPool.New = func() any {
		row := make([]float64, width)
		return &row
	}
	for i := range r.shards {
		r.shards[i].entries = make(map[repoKey]cloud.Allocation)
	}
	return r, nil
}

// Events returns a copy of the signature metric tuple.
func (r *Repository) Events() []metrics.Event {
	return append([]metrics.Event(nil), r.events...)
}

// EventsRef returns the signature metric tuple without copying. The
// slice is immutable after construction; callers must treat it as
// read-only. Hot loops use it so repeated profiling rounds share one
// event tuple (which also keys the profiler's monitor cache).
func (r *Repository) EventsRef() []metrics.Event { return r.events }

// Classes returns the number of workload classes.
func (r *Repository) Classes() int { return len(r.centroids) }

// Put stores the preferred allocation for a (class, interference
// bucket) pair; the Tuner populates bucket 0 during learning and the
// runtime controller adds interference buckets on demand.
func (r *Repository) Put(class, bucket int, alloc cloud.Allocation) error {
	if class < 0 || class >= len(r.centroids) {
		return fmt.Errorf("core: class %d out of range", class)
	}
	if bucket < 0 {
		return fmt.Errorf("core: negative interference bucket %d", bucket)
	}
	if err := alloc.Validate(); err != nil {
		return err
	}
	s := r.shardFor(class)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.entries[repoKey{class, bucket}] = alloc
	return nil
}

// Get returns the cached allocation for (class, bucket) without
// classification.
func (r *Repository) Get(class, bucket int) (cloud.Allocation, bool) {
	if class < 0 {
		return cloud.Allocation{}, false
	}
	s := r.shardFor(class)
	s.mu.RLock()
	defer s.mu.RUnlock()
	a, ok := s.entries[repoKey{class, bucket}]
	return a, ok
}

// Classify standardizes the signature and runs the classifier plus the
// novelty check, without touching the allocation entries.
func (r *Repository) Classify(sig *Signature) (class int, certainty float64, unforeseen bool, err error) {
	if err := sig.Validate(); err != nil {
		return 0, 0, false, err
	}
	if len(sig.Values) != len(r.events) {
		return 0, 0, false, fmt.Errorf("core: signature width %d, repository expects %d", len(sig.Values), len(r.events))
	}
	rowPtr := r.rowPool.Get().(*[]float64)
	defer r.rowPool.Put(rowPtr)
	row := *rowPtr
	r.standardizer.TransformInto(row, sig.Values)
	class, certainty = r.classifier.PredictProba(row)

	// Novelty: distance to the nearest centroid must be within the
	// learned radius. This catches workloads like the HotMail day-4
	// surge whose volume exceeds everything seen during learning.
	// The argmin runs on squared distances — same accumulation order,
	// and sqrt is monotone, so the winner (and first-wins tie) is the
	// one EuclideanDistance would pick — deferring the sqrt to the
	// single radius comparison.
	minDsq, nearest := math.Inf(1), -1
	for c, centroid := range r.centroids {
		if d := ml.SquaredDistance(row, centroid); d < minDsq {
			minDsq, nearest = d, c
		}
	}
	if nearest >= 0 && math.Sqrt(minDsq) > r.noveltyRadius[nearest] {
		return class, certainty, true, nil
	}
	if certainty < r.certaintyThreshold {
		return class, certainty, true, nil
	}
	return class, certainty, false, nil
}

// Lookup is the cache lookup: classify the signature and fetch the
// allocation for the given interference bucket. A miss on the exact
// bucket with a hit on bucket 0 reports Hit=false but still returns
// the class, letting the controller tune for the new interference
// level and Put the result.
func (r *Repository) Lookup(sig *Signature, bucket int) (LookupResult, error) {
	class, certainty, unforeseen, err := r.Classify(sig)
	if err != nil {
		return LookupResult{}, err
	}
	res := LookupResult{Class: class, Certainty: certainty, Unforeseen: unforeseen}
	if unforeseen {
		res.Class = -1
		r.countMiss()
		return res, nil
	}
	if alloc, ok := r.Get(class, bucket); ok {
		res.Allocation = alloc
		res.Hit = true
		r.countHit()
		return res, nil
	}
	r.countMiss()
	return res, nil
}

func (r *Repository) countHit()  { r.hits.Inc() }
func (r *Repository) countMiss() { r.misses.Inc() }

// HitRate returns the fraction of lookups that were cache hits.
func (r *Repository) HitRate() float64 {
	hits := r.hits.Load()
	total := hits + r.misses.Load()
	if total == 0 {
		return 0
	}
	return float64(hits) / float64(total)
}

// LookupCounts returns the raw (hits, misses) counters; under
// concurrent lookups the two loads are individually atomic but not
// mutually consistent — exact totals require external quiescence.
func (r *Repository) LookupCounts() (hits, misses int64) {
	return r.hits.Load(), r.misses.Load()
}

// Entries returns a stable snapshot of the cached allocations, sorted
// by class then bucket, for reports.
type Entry struct {
	Class      int
	Bucket     int
	Allocation cloud.Allocation
}

// Len returns the number of cached allocations.
func (r *Repository) Len() int {
	n := 0
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.RLock()
		n += len(s.entries)
		s.mu.RUnlock()
	}
	return n
}

// Snapshot returns all entries sorted by (class, bucket). Each shard is
// copied under its own read lock, so a snapshot taken under concurrent
// Puts is a consistent view per shard (not across shards).
func (r *Repository) Snapshot() []Entry {
	var out []Entry
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.RLock()
		for k, v := range s.entries {
			out = append(out, Entry{Class: k.class, Bucket: k.bucket, Allocation: v})
		}
		s.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Class != out[j].Class {
			return out[i].Class < out[j].Class
		}
		return out[i].Bucket < out[j].Bucket
	})
	return out
}
