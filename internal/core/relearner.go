package core

import (
	"errors"
	"time"

	"repro/internal/services"
	"repro/internal/sim"
)

// Relearner completes the §3.5 staleness loop around a Controller:
// when the repository repeatedly fails to classify ("the workload has
// changed over time and the current clustering is no longer
// relevant"), it re-runs the learning phase — profiling, clustering,
// and tuning — over the recently observed workloads and swaps the
// fresh repository in. While re-learning runs, production stays at
// full capacity (the controller's unforeseen fallback already put it
// there), so performance is protected at the price of cost.
//
// Re-learning rounds reuse the full parallel learning pipeline: the
// Learn template's Workers setting (and its derived-seed determinism)
// carries over unchanged, so a re-clustering round costs the same
// wall-clock as the initial learning phase and yields the same result
// for the same RNG state no matter how many workers run it.
type Relearner struct {
	// Controller is the wrapped DejaVu runtime controller.
	Controller *Controller
	// Learn is the learning-phase template; Workloads is replaced
	// with the recently observed ones on every re-learning round.
	Learn LearnConfig
	// MinWorkloads is how many distinct recent workloads must be on
	// record before re-learning makes sense (default 12).
	MinWorkloads int
	// MaxWorkloads bounds the observation window (default 24, one
	// day of hourly workloads).
	MaxWorkloads int

	recent       []services.Workload
	lastRecorded time.Duration
	busyUntil    time.Duration
	pendingRepo  *Repository
	relearns     int
}

// NewRelearner wraps a controller with the re-clustering loop.
func NewRelearner(ctl *Controller, learnTemplate LearnConfig) (*Relearner, error) {
	if ctl == nil {
		return nil, errors.New("core: nil controller")
	}
	if learnTemplate.Profiler == nil || learnTemplate.Tuner == nil || learnTemplate.Rng == nil {
		return nil, errors.New("core: learn template needs Profiler, Tuner, and Rng")
	}
	return &Relearner{
		Controller:   ctl,
		Learn:        learnTemplate,
		MinWorkloads: 12,
		MaxWorkloads: 24,
		lastRecorded: -1 << 62,
		busyUntil:    -1,
	}, nil
}

// Name implements sim.Controller.
func (r *Relearner) Name() string { return "dejavu-relearn" }

// Step implements sim.Controller.
func (r *Relearner) Step(obs *sim.Observation) (sim.Action, error) {
	// Keep a sliding window of recent hourly workloads — the
	// re-learning corpus.
	if obs.Now-r.lastRecorded >= r.Controller.cfg.ProfileInterval {
		r.lastRecorded = obs.Now
		r.recent = append(r.recent, obs.Workload)
		if len(r.recent) > r.MaxWorkloads {
			r.recent = r.recent[len(r.recent)-r.MaxWorkloads:]
		}
	}

	// Finish an in-flight re-learning round.
	if r.pendingRepo != nil && obs.Now >= r.busyUntil {
		if err := r.Controller.ReplaceRepository(r.pendingRepo); err != nil {
			return sim.Action{}, err
		}
		r.pendingRepo = nil
	}

	// Trigger a new round when the clustering is stale. The learning
	// itself happens in the profiling environment; production keeps
	// running at the full-capacity fallback until the new repository
	// is ready.
	if r.pendingRepo == nil && obs.Now >= r.busyUntil &&
		r.Controller.NeedsRelearning() && len(r.recent) >= r.MinWorkloads {
		cfg := r.Learn
		cfg.Workloads = append([]services.Workload(nil), r.recent...)
		repo, report, err := Learn(cfg)
		if err != nil {
			return sim.Action{}, err
		}
		r.relearns++
		r.pendingRepo = repo
		// The new repository becomes usable only after the
		// profiling and tuning work has actually been done:
		// one signature window per workload trial plus the tuner
		// runs.
		profiling := time.Duration(len(cfg.Workloads)*trialsOf(cfg)) * windowOf(cfg)
		r.busyUntil = obs.Now + profiling + report.TuningTime
	}

	return r.Controller.Step(obs)
}

func trialsOf(cfg LearnConfig) int {
	if cfg.TrialsPerWorkload > 0 {
		return cfg.TrialsPerWorkload
	}
	return 3
}

func windowOf(cfg LearnConfig) time.Duration {
	if cfg.ProfileWindow > 0 {
		return cfg.ProfileWindow
	}
	return 5 * time.Minute
}

// Relearns reports how many re-clustering rounds ran.
func (r *Relearner) Relearns() int { return r.relearns }

// Relearning reports whether a round is currently in flight.
func (r *Relearner) Relearning() bool { return r.pendingRepo != nil }

var _ sim.Controller = (*Relearner)(nil)
