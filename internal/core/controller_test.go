package core

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/cloud"
	"repro/internal/services"
	"repro/internal/sim"
	"repro/internal/trace"
)

// buildDejaVu learns on the trace's first day and returns a runtime
// controller for Cassandra scale-out.
func buildDejaVu(t *testing.T, tr *trace.Trace, seed int64, interference bool) (*Controller, *Repository) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	svc := services.NewCassandra()
	day0, err := tr.Day(0)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := NewProfiler(svc, rng)
	if err != nil {
		t.Fatal(err)
	}
	tuner, err := NewScaleOutTuner(svc, cloud.Large, svc.MinInstances, svc.MaxInstances)
	if err != nil {
		t.Fatal(err)
	}
	repo, _, err := Learn(LearnConfig{
		Profiler:  prof,
		Tuner:     tuner,
		Workloads: WorkloadsFromTrace(day0, svc.DefaultMix()),
		Rng:       rng,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := NewController(ControllerConfig{
		Repository:            repo,
		Profiler:              prof,
		Tuner:                 tuner,
		Service:               svc,
		InterferenceDetection: interference,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ctl, repo
}

func TestNewControllerValidation(t *testing.T) {
	if _, err := NewController(ControllerConfig{}); err == nil {
		t.Error("empty config should error")
	}
}

func TestControllerReusesAllocations(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tr := trace.Messenger(trace.SynthConfig{Rng: rng}).ScaleTo(500)
	ctl, repo := buildDejaVu(t, tr, 1, false)
	svc := services.NewCassandra()

	// Replay days 1-2.
	rest, err := tr.Slice(24, 3*24)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(sim.Config{
		Service:    svc,
		Trace:      rest,
		Controller: ctl,
		Initial:    svc.MaxAllocation(),
	})
	if err != nil {
		t.Fatal(err)
	}
	// The controller must adapt (multiple decisions) and almost all
	// of them must be fast cache hits (~10 s, no tuning).
	if res.Decisions < 4 {
		t.Errorf("Decisions=%d want >= 4 over two days", res.Decisions)
	}
	if ctl.TuningCount() > 1 {
		t.Errorf("TuningCount=%d: runtime should reuse cached allocations", ctl.TuningCount())
	}
	fast := 0
	for _, d := range ctl.AdaptationTimes() {
		if d <= DefaultSignatureWindow {
			fast++
		}
	}
	if fast < len(ctl.AdaptationTimes())-1 {
		t.Errorf("only %d/%d adaptations were cache-hit fast", fast, len(ctl.AdaptationTimes()))
	}
	// SLO is mostly met (paper keeps latency below 60 ms except
	// short adaptation windows and re-partitioning transients).
	if res.SLOViolationFraction > 0.15 {
		t.Errorf("SLO violation fraction=%v want <= 0.15", res.SLOViolationFraction)
	}
	// It must also be much cheaper than the fixed max.
	savings := res.CostSavingsVs(sim.FixedMaxCost(svc, rest))
	if savings < 0.30 {
		t.Errorf("savings=%v want >= 0.30", savings)
	}
	if repo.HitRate() < 0.8 {
		t.Errorf("hit rate=%v want >= 0.8", repo.HitRate())
	}
}

func TestControllerUnforeseenFallsBackToFullCapacity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tr := trace.HotMail(trace.SynthConfig{Rng: rng}).ScaleTo(500)
	ctl, _ := buildDejaVu(t, tr, 2, false)
	svc := services.NewCassandra()

	// Replay day 3 (zero-based), which contains the surge hour.
	day3, err := tr.Slice(3*24, 4*24)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(sim.Config{
		Service:    svc,
		Trace:      day3,
		Controller: ctl,
		Initial:    svc.MaxAllocation(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if ctl.UnforeseenCount() == 0 {
		t.Error("surge hour should be flagged unforeseen")
	}
	// During the surge hour the allocation must be at full capacity.
	surgeStart := 20 * 60 // minute index of hour 20
	fullAt := false
	for i := surgeStart + 2; i < surgeStart+60 && i < len(res.Records); i++ {
		if int(res.Records[i].Alloc.Count) == svc.MaxInstances {
			fullAt = true
			break
		}
	}
	if !fullAt {
		t.Error("surge hour not served at full capacity")
	}
}

func TestControllerInterferenceDetection(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tr := trace.Messenger(trace.SynthConfig{Rng: rng}).ScaleTo(500)
	svc := services.NewCassandra()

	day12, err := tr.Slice(24, 3*24)
	if err != nil {
		t.Fatal(err)
	}
	interf := func(now time.Duration) float64 {
		if now >= 6*time.Hour {
			return 0.2
		}
		return 0
	}

	run := func(detect bool, seed int64) (*sim.Result, *Controller) {
		ctl, _ := buildDejaVu(t, tr, seed, detect)
		res, err := sim.Run(sim.Config{
			Service:      svc,
			Trace:        day12,
			Controller:   ctl,
			Initial:      svc.MaxAllocation(),
			Interference: interf,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res, ctl
	}

	on, ctlOn := run(true, 3)
	off, _ := run(false, 3)

	if ctlOn.InterferenceEvents() == 0 {
		t.Error("interference loop never fired")
	}
	if on.SLOViolationFraction >= off.SLOViolationFraction {
		t.Errorf("detection on violations=%v should beat off=%v",
			on.SLOViolationFraction, off.SLOViolationFraction)
	}
	// Detection compensates with more resources (paper Fig. 11b).
	if on.MeanAllocatedInstances() <= off.MeanAllocatedInstances() {
		t.Errorf("detection on instances=%v should exceed off=%v",
			on.MeanAllocatedInstances(), off.MeanAllocatedInstances())
	}
}

func TestControllerAdaptationTimesAreSeconds(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	tr := trace.Messenger(trace.SynthConfig{Rng: rng}).ScaleTo(500)
	ctl, _ := buildDejaVu(t, tr, 4, false)
	svc := services.NewCassandra()
	day1, err := tr.Day(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(sim.Config{
		Service:    svc,
		Trace:      day1,
		Controller: ctl,
		Initial:    svc.MaxAllocation(),
	}); err != nil {
		t.Fatal(err)
	}
	times := ctl.AdaptationTimes()
	if len(times) == 0 {
		t.Fatal("no adaptations recorded")
	}
	for _, d := range times {
		if d > time.Minute {
			t.Errorf("adaptation %v too slow for a cache hit", d)
		}
	}
}

func TestControllerStaysPutOnStableLoad(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tr := trace.Messenger(trace.SynthConfig{Rng: rng}).ScaleTo(500)
	ctl, _ := buildDejaVu(t, tr, 5, false)
	svc := services.NewCassandra()

	// Flat trace at the afternoon plateau level for 6 hours.
	flat := &trace.Trace{Name: "flat", Step: time.Hour, Loads: []float64{400, 400, 400, 400, 400, 400}}
	res, err := sim.Run(sim.Config{
		Service:    svc,
		Trace:      flat,
		Controller: ctl,
		Initial:    svc.MaxAllocation(),
	})
	if err != nil {
		t.Fatal(err)
	}
	// One adaptation (down from max) and then stability.
	if res.Decisions > 2 {
		t.Errorf("Decisions=%d on flat load, want <= 2", res.Decisions)
	}
}
