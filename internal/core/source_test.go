package core

import (
	"testing"

	"repro/internal/cloud"
)

// TestHandleDecisionSource pins that a Handle serves DecisionSource
// calls from the live snapshot — including picking up a hot swap —
// and that the repository adapter stays pinned to its value.
func TestHandleDecisionSource(t *testing.T) {
	repo := learnTestRepository(t, 51)
	h, err := NewHandle(repo)
	if err != nil {
		t.Fatal(err)
	}
	var src DecisionSource = h
	if len(src.Events()) == 0 {
		t.Fatal("no signature events")
	}
	if err := src.Put(0, 3, cloud.Allocation{Type: cloud.Large, Count: 4}); err != nil {
		t.Fatal(err)
	}
	alloc, ok, err := src.Get(0, 3)
	if err != nil || !ok || alloc.Count != 4 {
		t.Fatalf("get: %v %v %v", alloc, ok, err)
	}
	if _, ok, _ := src.Get(0, 9); ok {
		t.Fatal("unexpected hit on empty bucket")
	}

	// A swap is visible to the next source call.
	repo2 := learnTestRepository(t, 52)
	if _, err := h.Swap(repo2); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := src.Get(0, 3); ok {
		t.Fatal("entry survived the swap; source is not reading the live snapshot")
	}

	pinned, err := SourceForRepository(repo)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := pinned.Get(0, 3); !ok {
		t.Fatal("repository source must stay pinned to its repository")
	}
	if _, err := SourceForRepository(nil); err == nil {
		t.Fatal("nil repository must not wrap")
	}

	// Lookup delegates with working classification.
	sig := &Signature{Events: src.Events(), Values: make([]float64, len(src.Events()))}
	if _, err := src.Lookup(sig, 0); err != nil {
		t.Fatalf("lookup through handle: %v", err)
	}
}
