package core

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/cloud"
	"repro/internal/obs"
	"repro/internal/services"
)

// SharedTuningCache realizes the paper's closing direction: "an
// application can significantly benefit from its own resource
// allocation experience ... we believe that it can benefit from the
// experience of other cloud tenants as well" (§6).
//
// It wraps a Tuner with a cross-tenant memo keyed by the quantized
// operating point (offered load per unit of the service's capacity
// grain, request-mix name, interference bucket). Tenants running the
// same service template share the cache, so the second tenant's
// learning phase reuses the first tenant's experiments instead of
// re-running them.
//
// The steady state at fleet scale is every tenant hitting a fully warm
// cache, so the lookup path takes only a read lock and counts through
// cache-line-sharded counters — thousands of concurrent controllers
// sharing one template never serialize on a write lock or rendezvous
// on one counter line. Misses (rare, and each worth minutes of tuning)
// pay for the write lock.
type SharedTuningCache struct {
	mu      sync.RWMutex
	entries map[sharedKey]cloud.Allocation
	hits    obs.Counter
	misses  obs.Counter
}

type sharedKey struct {
	service    string
	mix        string
	loadBucket int
	interfB    int
}

// sharedLoadGrain quantizes offered load; allocations are integral, so
// nearby loads share an optimum. The grain is a fraction of one
// capacity unit's client budget.
const sharedLoadGrain = 0.25

// NewSharedTuningCache returns an empty cross-tenant cache.
func NewSharedTuningCache() *SharedTuningCache {
	return &SharedTuningCache{entries: make(map[sharedKey]cloud.Allocation)}
}

// Hits and Misses report cache effectiveness.
func (s *SharedTuningCache) Hits() int { return int(s.hits.Load()) }

// Misses reports how many lookups fell through to a real tuner.
func (s *SharedTuningCache) Misses() int { return int(s.misses.Load()) }

// Len returns the number of memoized operating points.
func (s *SharedTuningCache) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.entries)
}

// SharedTuner is the per-tenant view of the shared cache: a Tuner that
// consults the memo before delegating to the tenant's own tuner.
type SharedTuner struct {
	cache   *SharedTuningCache
	service services.Service
	inner   Tuner

	lastWasHit bool
}

// NewSharedTuner wraps a tenant's tuner with the shared cache.
func NewSharedTuner(cache *SharedTuningCache, svc services.Service, inner Tuner) (*SharedTuner, error) {
	if cache == nil || svc == nil || inner == nil {
		return nil, errors.New("core: shared tuner needs cache, service, and inner tuner")
	}
	return &SharedTuner{cache: cache, service: svc, inner: inner}, nil
}

func (t *SharedTuner) key(w services.Workload, interference float64) sharedKey {
	grain := t.service.ClientsPerUnit() * sharedLoadGrain
	bucket := 0
	if grain > 0 {
		bucket = int(math.Ceil(w.Clients / grain))
	}
	return sharedKey{
		service:    t.service.Name(),
		mix:        w.Mix.Name,
		loadBucket: bucket,
		interfB:    BucketForFraction(interference),
	}
}

// Tune implements Tuner: a shared-cache hit costs nothing; a miss runs
// the inner tuner and publishes the result for every other tenant.
func (t *SharedTuner) Tune(w services.Workload, interference float64) (cloud.Allocation, error) {
	if interference < 0 || interference >= 1 {
		return cloud.Allocation{}, fmt.Errorf("core: interference %v out of [0,1)", interference)
	}
	key := t.key(w, interference)
	t.cache.mu.RLock()
	alloc, ok := t.cache.entries[key]
	t.cache.mu.RUnlock()
	if ok {
		t.cache.hits.Inc()
		t.lastWasHit = true
		return alloc, nil
	}
	t.cache.misses.Inc()

	// Check-then-act, as before the read/write split: two tenants
	// racing on a cold key both tune and both publish — the tuner is
	// deterministic for a given key, so the second Put overwrites the
	// first with an identical value.
	alloc, err := t.inner.Tune(w, interference)
	if err != nil {
		return cloud.Allocation{}, err
	}
	t.lastWasHit = false
	t.cache.mu.Lock()
	t.cache.entries[key] = alloc
	t.cache.mu.Unlock()
	return alloc, nil
}

// Duration implements Tuner: zero after a shared-cache hit, the inner
// tuner's cost otherwise.
func (t *SharedTuner) Duration() time.Duration {
	if t.lastWasHit {
		return 0
	}
	return t.inner.Duration()
}

var _ Tuner = (*SharedTuner)(nil)
