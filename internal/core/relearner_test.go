package core

import (
	"math/rand"
	"testing"

	"repro/internal/cloud"
	"repro/internal/services"
	"repro/internal/sim"
	"repro/internal/trace"
)

// driftScenario learns at a small scale and then replays the same
// diurnal pattern 60% hotter: the new levels fall outside every
// learned class, so the repository goes stale.
func driftScenario(t *testing.T, seed int64) (*Controller, LearnConfig, *services.Cassandra, *trace.Trace) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	svc := services.NewCassandra()
	small := trace.Messenger(trace.SynthConfig{Rng: rng}).ScaleTo(300)
	day0, err := small.Day(0)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := NewProfiler(svc, rng)
	if err != nil {
		t.Fatal(err)
	}
	tuner, err := NewScaleOutTuner(svc, cloud.Large, svc.MinInstances, svc.MaxInstances)
	if err != nil {
		t.Fatal(err)
	}
	template := LearnConfig{Profiler: prof, Tuner: tuner, Rng: rng}
	learnCfg := template
	learnCfg.Workloads = WorkloadsFromTrace(day0, svc.DefaultMix())
	repo, _, err := Learn(learnCfg)
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := NewController(ControllerConfig{
		Repository: repo,
		Profiler:   prof,
		Tuner:      tuner,
		Service:    svc,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The drifted workload: same shape, 1.6x the volume (peak 480).
	drifted := trace.Messenger(trace.SynthConfig{Rng: rand.New(rand.NewSource(seed + 1))}).ScaleTo(480)
	return ctl, template, svc, drifted
}

func TestNeedsRelearningAfterDrift(t *testing.T) {
	ctl, _, svc, drifted := driftScenario(t, 61)
	// Replay only the drifted afternoon/evening (plateau + peak,
	// hours 14-21 of day 1): every one of them lies outside the
	// learned classes, so the consecutive-unforeseen counter is
	// still high when the run ends.
	window, err := drifted.Slice(24+14, 24+22)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(sim.Config{
		Service:    svc,
		Trace:      window,
		Controller: ctl,
		Initial:    svc.MaxAllocation(),
	}); err != nil {
		t.Fatal(err)
	}
	if ctl.UnforeseenCount() < 3 {
		t.Fatalf("drifted trace should look unforeseen, got %d events", ctl.UnforeseenCount())
	}
	if !ctl.NeedsRelearning() {
		t.Error("repeated unforeseen rounds should flag stale clustering")
	}
}

func TestRelearnerRecoversFromDrift(t *testing.T) {
	ctl, template, svc, drifted := driftScenario(t, 62)
	rl, err := NewRelearner(ctl, template)
	if err != nil {
		t.Fatal(err)
	}
	// Two drifted days: staleness is detected during day one,
	// re-learning runs, and day two is served from the new classes.
	window, err := drifted.Slice(24, 3*24)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(sim.Config{
		Service:    svc,
		Trace:      window,
		Controller: rl,
		Initial:    svc.MaxAllocation(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rl.Relearns() == 0 {
		t.Fatal("relearner never re-clustered")
	}
	// After re-learning, the controller must be scaling again rather
	// than pinning full capacity: the second day's mean allocation
	// must be clearly below the maximum.
	day2 := res.Records[24*60:]
	sum := 0.0
	for _, rec := range day2 {
		sum += float64(rec.Alloc.Count)
	}
	mean := sum / float64(len(day2))
	if mean > 9 {
		t.Errorf("post-relearn mean allocation=%v; still stuck at full capacity", mean)
	}
	// And it must be cheaper than an equivalent full-capacity run.
	if res.CostSavingsVs(sim.FixedMaxCost(svc, window)) < 0.1 {
		t.Errorf("savings=%v want >= 0.1 after recovery", res.CostSavingsVs(sim.FixedMaxCost(svc, window)))
	}
	// SLO intact throughout (full capacity covered the stale phase).
	if res.SLOViolationFraction > 0.1 {
		t.Errorf("violations=%v want <= 0.1", res.SLOViolationFraction)
	}
}

func TestRelearnerValidation(t *testing.T) {
	ctl, template, _, _ := driftScenario(t, 63)
	if _, err := NewRelearner(nil, template); err == nil {
		t.Error("nil controller should error")
	}
	if _, err := NewRelearner(ctl, LearnConfig{}); err == nil {
		t.Error("empty template should error")
	}
}
