package core

import (
	"errors"

	"repro/internal/cloud"
	"repro/internal/metrics"
)

// DecisionSource is everything a runtime controller needs from the
// decision plane: the signature vocabulary, classify-and-lookup over
// it, and the miss path's read/write entry access. Two
// implementations exist — *Handle serves from an in-process versioned
// repository, and internal/client's template source forwards over the
// wire to a remote dejavud — so the same controller code drives both
// deployment shapes, and a fleet can switch between them with a flag
// (dejavu-sim -fleet N -remote addr).
//
// Implementations must be safe for concurrent use: a fleet shares one
// source across every VM of a service template.
type DecisionSource interface {
	// Events returns the signature metric tuple. Callers must treat
	// the slice as read-only; it is fetched once per controller and
	// reused across profiling rounds.
	Events() []metrics.Event
	// Lookup classifies the signature and fetches the cached
	// allocation for the interference bucket.
	Lookup(sig *Signature, bucket int) (LookupResult, error)
	// Get fetches a cached allocation by (class, bucket) without
	// classification — the interference path's direct probe.
	Get(class, bucket int) (cloud.Allocation, bool, error)
	// Put stores a tuned allocation for every peer to reuse.
	Put(class, bucket int, alloc cloud.Allocation) error
}

// Handle's DecisionSource: every call serves from the live snapshot,
// so a background relearn swap is picked up by the next call without
// any controller involvement.

// Events implements DecisionSource.
func (h *Handle) Events() []metrics.Event { return h.Current().Repo.EventsRef() }

// Lookup implements DecisionSource.
func (h *Handle) Lookup(sig *Signature, bucket int) (LookupResult, error) {
	return h.Current().Repo.Lookup(sig, bucket)
}

// Get implements DecisionSource.
func (h *Handle) Get(class, bucket int) (cloud.Allocation, bool, error) {
	alloc, ok := h.Current().Repo.Get(class, bucket)
	return alloc, ok, nil
}

// Put implements DecisionSource.
func (h *Handle) Put(class, bucket int, alloc cloud.Allocation) error {
	return h.Current().Repo.Put(class, bucket, alloc)
}

var _ DecisionSource = (*Handle)(nil)

// repositorySource adapts a bare *Repository to DecisionSource for
// the historical ControllerConfig.Repository path. Unlike a Handle it
// is pinned to one repository value; ReplaceRepository swaps the
// controller's whole source.
type repositorySource struct{ repo *Repository }

func (r repositorySource) Events() []metrics.Event { return r.repo.EventsRef() }

func (r repositorySource) Lookup(sig *Signature, bucket int) (LookupResult, error) {
	return r.repo.Lookup(sig, bucket)
}

func (r repositorySource) Get(class, bucket int) (cloud.Allocation, bool, error) {
	alloc, ok := r.repo.Get(class, bucket)
	return alloc, ok, nil
}

func (r repositorySource) Put(class, bucket int, alloc cloud.Allocation) error {
	return r.repo.Put(class, bucket, alloc)
}

// SourceForRepository wraps a repository as a DecisionSource.
func SourceForRepository(repo *Repository) (DecisionSource, error) {
	if repo == nil {
		return nil, errors.New("core: nil repository")
	}
	return repositorySource{repo: repo}, nil
}
