package core

import (
	"repro/internal/services"
)

// InterferenceIndex computes the paper's Eq. 2:
//
//	index = PerformanceLevel_production / PerformanceLevel_isolation
//
// oriented so that 1.0 means no interference and larger values mean
// more degradation. For latency-style metrics that is the production
// latency over the isolation latency; for QoS-style metrics the
// isolation QoS over the production QoS. The latency ratio is used
// whenever both performances carry a latency, since every service in
// this repository reports one.
func InterferenceIndex(production, isolation services.Perf) float64 {
	if isolation.LatencyMs > 0 && production.LatencyMs > 0 {
		idx := production.LatencyMs / isolation.LatencyMs
		if idx < 1 {
			return 1
		}
		return idx
	}
	if production.QoSPercent > 0 && isolation.QoSPercent > 0 {
		idx := isolation.QoSPercent / production.QoSPercent
		if idx < 1 {
			return 1
		}
		return idx
	}
	return 1
}

// EstimateInterferenceFraction inverts the open-system latency model
// to recover the fraction of capacity stolen by co-located tenants
// from the observed interference index and the isolation utilization:
//
//	index = (1 - rhoIso) / (1 - rhoProd)   (M/M/1 latency ratio)
//	rhoProd = rhoIso / (1 - f)
//
// giving f = 1 - rhoIso / rhoProd with rhoProd = 1 - (1-rhoIso)/index.
// The estimate is clamped to [0, 0.9] and degenerate inputs return 0.
func EstimateInterferenceFraction(index, rhoIso float64) float64 {
	if index <= 1 || rhoIso <= 0 || rhoIso >= 1 {
		return 0
	}
	rhoProd := 1 - (1-rhoIso)/index
	if rhoProd <= rhoIso {
		return 0
	}
	if rhoProd > 0.99 {
		rhoProd = 0.99
	}
	f := 1 - rhoIso/rhoProd
	if f < 0 {
		return 0
	}
	if f > 0.9 {
		return 0.9
	}
	return f
}

// FractionForBucket returns the representative contention fraction of
// a repository bucket (its upper edge, so the tuned allocation covers
// the whole bucket).
func FractionForBucket(bucket int) float64 {
	if bucket <= 0 {
		return 0
	}
	f := float64(bucket) * InterferenceBucketWidth
	if f > 0.9 {
		f = 0.9
	}
	return f
}
