package core

import (
	"errors"
	"sync/atomic"
)

// VersionedRepository pairs an immutable repository snapshot with a
// monotonically increasing version number. Decision-path readers grab
// one VersionedRepository and use it for the whole request, so every
// decision is served from a single consistent snapshot even while a
// background relearn swaps a new repository in.
type VersionedRepository struct {
	// Repo is the repository snapshot. The learned artifacts are
	// immutable; the allocation entries keep accepting Puts, which is
	// intended — entries added against version v remain visible to
	// every reader of v.
	Repo *Repository
	// Version counts swaps since the handle was created, starting
	// at 1.
	Version uint64
}

// Handle is the swap-safe owner of a repository: a single atomic
// pointer to the current VersionedRepository. Readers never lock;
// writers build the replacement completely off the request path and
// publish it with one pointer store. This is the server-side analogue
// of Controller.ReplaceRepository for concurrent, network-facing use.
type Handle struct {
	cur atomic.Pointer[VersionedRepository]
}

// NewHandle creates a handle owning the given repository at version 1.
func NewHandle(repo *Repository) (*Handle, error) {
	if repo == nil {
		return nil, errors.New("core: handle needs a repository")
	}
	h := &Handle{}
	h.cur.Store(&VersionedRepository{Repo: repo, Version: 1})
	return h, nil
}

// Current returns the live snapshot; never nil. Callers must read
// Repo and Version from the returned value, not via separate Handle
// calls, to stay on one snapshot.
func (h *Handle) Current() *VersionedRepository { return h.cur.Load() }

// Version returns the live snapshot's version.
func (h *Handle) Version() uint64 { return h.cur.Load().Version }

// Swap publishes a freshly built repository and returns its version.
// In-flight readers keep serving from the snapshot they already hold;
// new readers see the replacement immediately.
func (h *Handle) Swap(repo *Repository) (uint64, error) {
	if repo == nil {
		return 0, errors.New("core: cannot swap in a nil repository")
	}
	for {
		old := h.cur.Load()
		next := &VersionedRepository{Repo: repo, Version: old.Version + 1}
		if h.cur.CompareAndSwap(old, next) {
			return next.Version, nil
		}
	}
}
