package core

import (
	"errors"
	"fmt"
	"sync/atomic"
)

// VersionedRepository pairs an immutable repository snapshot with a
// monotonically increasing version number. Decision-path readers grab
// one VersionedRepository and use it for the whole request, so every
// decision is served from a single consistent snapshot even while a
// background relearn swaps a new repository in.
type VersionedRepository struct {
	// Repo is the repository snapshot. The learned artifacts are
	// immutable; the allocation entries keep accepting Puts, which is
	// intended — entries added against version v remain visible to
	// every reader of v.
	Repo *Repository
	// Version counts swaps since the handle was created, starting
	// at 1.
	Version uint64
}

// Handle is the swap-safe owner of a repository: a single atomic
// pointer to the current VersionedRepository. Readers never lock;
// writers build the replacement completely off the request path and
// publish it with one pointer store. This is the server-side analogue
// of Controller.ReplaceRepository for concurrent, network-facing use.
type Handle struct {
	cur atomic.Pointer[VersionedRepository]
}

// NewHandle creates a handle owning the given repository at version 1.
func NewHandle(repo *Repository) (*Handle, error) {
	if repo == nil {
		return nil, errors.New("core: handle needs a repository")
	}
	h := &Handle{}
	h.cur.Store(&VersionedRepository{Repo: repo, Version: 1})
	return h, nil
}

// Current returns the live snapshot; never nil. Callers must read
// Repo and Version from the returned value, not via separate Handle
// calls, to stay on one snapshot.
func (h *Handle) Current() *VersionedRepository { return h.cur.Load() }

// Version returns the live snapshot's version.
func (h *Handle) Version() uint64 { return h.cur.Load().Version }

// Swap publishes a freshly built repository and returns its version.
// In-flight readers keep serving from the snapshot they already hold;
// new readers see the replacement immediately.
func (h *Handle) Swap(repo *Repository) (uint64, error) {
	if repo == nil {
		return 0, errors.New("core: cannot swap in a nil repository")
	}
	for {
		old := h.cur.Load()
		next := &VersionedRepository{Repo: repo, Version: old.Version + 1}
		if h.cur.CompareAndSwap(old, next) {
			return next.Version, nil
		}
	}
}

// SwapAt publishes repo under a caller-chosen version instead of the
// next local increment. A replicated tier needs this: every replica of
// a template must report the same version for the same repository
// content, so the control plane picks the version once and forces it
// onto each replica — including a replica that restarted and lost its
// local counter. version must not go backwards; re-publishing the
// current version is allowed (content convergence without a visible
// version change).
func (h *Handle) SwapAt(repo *Repository, version uint64) error {
	if repo == nil {
		return errors.New("core: cannot swap in a nil repository")
	}
	if version == 0 {
		return errors.New("core: version 0 is reserved (versions start at 1)")
	}
	for {
		old := h.cur.Load()
		if version < old.Version {
			return fmt.Errorf("core: cannot swap to version %d behind current %d", version, old.Version)
		}
		next := &VersionedRepository{Repo: repo, Version: version}
		if h.cur.CompareAndSwap(old, next) {
			return nil
		}
	}
}

// NewHandleAt creates a handle owning repo at a caller-chosen version
// — the create half of SwapAt for replicas installing a template they
// have never seen.
func NewHandleAt(repo *Repository, version uint64) (*Handle, error) {
	if repo == nil {
		return nil, errors.New("core: handle needs a repository")
	}
	if version == 0 {
		return nil, errors.New("core: version 0 is reserved (versions start at 1)")
	}
	h := &Handle{}
	h.cur.Store(&VersionedRepository{Repo: repo, Version: version})
	return h, nil
}
