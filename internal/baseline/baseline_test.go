package baseline

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/services"
	"repro/internal/sim"
	"repro/internal/trace"
)

func scaledMessenger(t *testing.T, seed int64, phaseShift bool) *trace.Trace {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	return trace.Messenger(trace.SynthConfig{Rng: rng, DailyPhaseShift: phaseShift}).ScaleTo(500)
}

func TestFixedMaxHoldsMax(t *testing.T) {
	svc := services.NewCassandra()
	tr := scaledMessenger(t, 1, false)
	week, err := tr.Slice(24, 7*24)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(sim.Config{
		Service:    svc,
		Trace:      week,
		Controller: NewFixedMax(svc),
		Initial:    svc.MaxAllocation(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.SLOViolationFraction > 0.01 {
		t.Errorf("fixed max should never violate, got %v", res.SLOViolationFraction)
	}
	if res.MeanAllocatedInstances() != 10 {
		t.Errorf("mean instances=%v want 10", res.MeanAllocatedInstances())
	}
	if res.Decisions != 0 {
		t.Errorf("fixed max made %d decisions", res.Decisions)
	}
}

func buildAutopilot(t *testing.T, tr *trace.Trace) *Autopilot {
	t.Helper()
	svc := services.NewCassandra()
	day0, err := tr.Day(0)
	if err != nil {
		t.Fatal(err)
	}
	tuner, err := core.NewScaleOutTuner(svc, cloud.Large, svc.MinInstances, svc.MaxInstances)
	if err != nil {
		t.Fatal(err)
	}
	ap, err := LearnAutopilotSchedule(tuner, core.WorkloadsFromTrace(day0, svc.DefaultMix()))
	if err != nil {
		t.Fatal(err)
	}
	return ap
}

func TestAutopilotScheduleValidation(t *testing.T) {
	svc := services.NewCassandra()
	tuner, _ := core.NewScaleOutTuner(svc, cloud.Large, 2, 10)
	if _, err := LearnAutopilotSchedule(tuner, nil); err == nil {
		t.Error("wrong workload count should error")
	}
	ws := make([]services.Workload, 24)
	for i := range ws {
		ws[i] = services.Workload{Clients: 100, Mix: svc.DefaultMix()}
	}
	if _, err := LearnAutopilotSchedule(nil, ws); err == nil {
		t.Error("nil tuner should error")
	}
	if _, err := LearnAutopilotSchedule(tuner, ws); err != nil {
		t.Errorf("valid schedule: %v", err)
	}
}

func TestAutopilotTracksLearningDayExactly(t *testing.T) {
	// On a trace with NO day-to-day variation, Autopilot is perfect.
	tr := trace.Messenger(trace.SynthConfig{}).ScaleTo(500) // no rng: no jitter
	svc := services.NewCassandra()
	ap := buildAutopilot(t, tr)
	day1, err := tr.Day(1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(sim.Config{
		Service:    svc,
		Trace:      day1,
		Controller: ap,
		Initial:    svc.MaxAllocation(),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Only warm-up/stabilization transients may violate.
	if res.SLOViolationFraction > 0.2 {
		t.Errorf("autopilot on identical day violated %v", res.SLOViolationFraction)
	}
	if res.Decisions == 0 {
		t.Error("autopilot should follow the schedule")
	}
}

func TestAutopilotSuffersUnderPhaseShift(t *testing.T) {
	// With daily phase drift the schedule misfires around level
	// transitions — the paper's ">= 28% of the time" effect.
	tr := scaledMessenger(t, 2, true)
	svc := services.NewCassandra()
	ap := buildAutopilot(t, tr)
	rest, err := tr.Slice(24, 6*24)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(sim.Config{
		Service:    svc,
		Trace:      rest,
		Controller: ap,
		Initial:    svc.MaxAllocation(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.SLOViolationFraction < 0.05 {
		t.Errorf("autopilot under phase drift should violate noticeably, got %v",
			res.SLOViolationFraction)
	}
}

func TestRightScaleValidation(t *testing.T) {
	if _, err := NewRightScale(cloud.Large, 0, 10, time.Minute); err == nil {
		t.Error("min=0 should error")
	}
	if _, err := NewRightScale(cloud.Large, 5, 2, time.Minute); err == nil {
		t.Error("max<min should error")
	}
	if _, err := NewRightScale(cloud.Large, 2, 10, 0); err == nil {
		t.Error("zero calm should error")
	}
}

func TestRightScaleScalesUpGradually(t *testing.T) {
	svc := services.NewCassandra()
	rs, err := NewRightScale(cloud.Large, 2, 10, 3*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	// Step from low to high load at t=30min.
	loads := make([]float64, 180)
	for i := range loads {
		if i < 30 {
			loads[i] = 100
		} else {
			loads[i] = 450
		}
	}
	tr := &trace.Trace{Name: "step", Step: time.Minute, Loads: loads}
	res, err := sim.Run(sim.Config{
		Service:    svc,
		Trace:      tr,
		Controller: rs,
		Initial:    cloud.Allocation{Type: cloud.Large, Count: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Multiple +2 resizes are needed (2 -> 9-ish); decisions > 2.
	if res.Decisions < 3 {
		t.Errorf("Decisions=%d want >= 3 (gradual +2 steps)", res.Decisions)
	}
	// Eventually the SLO is met.
	tail := res.Records[150:]
	bad := 0
	for _, r := range tail {
		if r.SLOViolated {
			bad++
		}
	}
	if bad > len(tail)/4 {
		t.Errorf("rightscale did not converge: %d/%d tail violations", bad, len(tail))
	}
	// Adaptation episodes cost multiples of the calm time.
	times := rs.AdaptationTimes()
	if len(times) == 0 {
		t.Fatal("no adaptation episodes recorded")
	}
	if times[0] < 3*time.Minute {
		t.Errorf("multi-resize episode=%v want >= one calm time", times[0])
	}
}

func TestRightScaleScalesDown(t *testing.T) {
	svc := services.NewCassandra()
	rs, _ := NewRightScale(cloud.Large, 2, 10, 3*time.Minute)
	loads := make([]float64, 120)
	for i := range loads {
		loads[i] = 80 // far below capacity of 10 instances
	}
	tr := &trace.Trace{Name: "low", Step: time.Minute, Loads: loads}
	res, err := sim.Run(sim.Config{
		Service:    svc,
		Trace:      tr,
		Controller: rs,
		Initial:    cloud.Allocation{Type: cloud.Large, Count: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	final := int(res.Records[len(res.Records)-1].Alloc.Count)
	if final >= 10 {
		t.Errorf("rightscale should scale down, final=%d", final)
	}
	if final < 2 {
		t.Errorf("rightscale went below min: %d", final)
	}
}

func TestRightScaleRespectsCalmTime(t *testing.T) {
	svc := services.NewCassandra()
	rs, _ := NewRightScale(cloud.Large, 2, 10, 15*time.Minute)
	loads := make([]float64, 60)
	for i := range loads {
		loads[i] = 450 // needs ~9 instances from 2
	}
	tr := &trace.Trace{Name: "high", Step: time.Minute, Loads: loads}
	res, err := sim.Run(sim.Config{
		Service:    svc,
		Trace:      tr,
		Controller: rs,
		Initial:    cloud.Allocation{Type: cloud.Large, Count: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	// In 60 minutes with 15-minute calm, at most 4-5 resizes fit.
	if res.Decisions > 5 {
		t.Errorf("calm time not respected: %d resizes in 1h", res.Decisions)
	}
}

func TestRightScaleSingleResizeIsInstant(t *testing.T) {
	svc := services.NewCassandra()
	rs, _ := NewRightScale(cloud.Large, 2, 10, 3*time.Minute)
	// Small step that one +2 resize fully absorbs: 150 -> 250
	// clients (4 instances cover 250 at rho 0.93... use 5).
	loads := make([]float64, 120)
	for i := range loads {
		if i < 30 {
			loads[i] = 150
		} else {
			loads[i] = 220
		}
	}
	tr := &trace.Trace{Name: "smallstep", Step: time.Minute, Loads: loads}
	if _, err := sim.Run(sim.Config{
		Service:    svc,
		Trace:      tr,
		Controller: rs,
		Initial:    cloud.Allocation{Type: cloud.Large, Count: 4},
	}); err != nil {
		t.Fatal(err)
	}
	for _, d := range rs.AdaptationTimes() {
		if d < 0 {
			t.Errorf("negative adaptation time %v", d)
		}
	}
	// At least one single-resize episode recorded as 0 (the paper's
	// "instantaneous" case).
	found := false
	for _, d := range rs.AdaptationTimes() {
		if d == 0 {
			found = true
		}
	}
	if !found {
		t.Log("no zero-cost episode; acceptable but unexpected:", rs.AdaptationTimes())
	}
}

func TestRetuner(t *testing.T) {
	svc := services.NewRUBiS()
	tuner, err := core.NewScaleOutTuner(svc, cloud.Large, 1, svc.MaxInstances)
	if err != nil {
		t.Fatal(err)
	}
	tuner.TrialDuration = time.Minute
	rt, err := NewRetuner(tuner)
	if err != nil {
		t.Fatal(err)
	}
	// Sine load: period 40 min over 2 hours.
	tr := trace.Sine(100, 500, 40*time.Minute, 2*time.Hour, time.Minute)
	res, err := sim.Run(sim.Config{
		Service:    svc,
		Trace:      tr,
		Controller: rt,
		Initial:    cloud.Allocation{Type: cloud.Large, Count: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Decisions == 0 {
		t.Fatal("retuner never adapted")
	}
	times := rt.AdaptationTimes()
	if len(times) == 0 {
		t.Fatal("no retuning episodes")
	}
	for _, d := range times {
		if d < time.Minute {
			t.Errorf("retuning episode %v implausibly fast", d)
		}
	}
	// The service must spend a noticeable share of time violating
	// the SLO (Figure 1's "bad performance" periods) because tuning
	// lags the sine.
	if res.SLOViolationFraction == 0 {
		t.Error("retuner should exhibit violation periods on a fast sine")
	}
}

func TestRetunerValidation(t *testing.T) {
	if _, err := NewRetuner(nil); err == nil {
		t.Error("nil tuner should error")
	}
}

func TestRetunerStableLoadNoChurn(t *testing.T) {
	svc := services.NewRUBiS()
	tuner, _ := core.NewScaleOutTuner(svc, cloud.Large, 1, 10)
	rt, _ := NewRetuner(tuner)
	loads := make([]float64, 120)
	for i := range loads {
		loads[i] = 300
	}
	tr := &trace.Trace{Name: "flat", Step: time.Minute, Loads: loads}
	res, err := sim.Run(sim.Config{
		Service:    svc,
		Trace:      tr,
		Controller: rt,
		Initial:    cloud.Allocation{Type: cloud.Large, Count: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rt.AdaptationTimes()) > 1 {
		t.Errorf("flat load should tune at most once, got %d", len(rt.AdaptationTimes()))
	}
	_ = res
}
