package baseline

import (
	"testing"
	"time"

	"repro/internal/cloud"
	"repro/internal/services"
	"repro/internal/sim"
	"repro/internal/trace"
)

func TestNewModelBasedValidation(t *testing.T) {
	slo := services.SLO{MaxLatencyMs: 60}
	if _, err := NewModelBased(cloud.Large, 0, 10, slo); err == nil {
		t.Error("min=0 should error")
	}
	if _, err := NewModelBased(cloud.Large, 5, 2, slo); err == nil {
		t.Error("max<min should error")
	}
	if _, err := NewModelBased(cloud.Large, 2, 10, services.SLO{MinQoSPercent: 95}); err == nil {
		t.Error("QoS-only SLO should error (latency model)")
	}
}

func TestModelBasedHandlesVolumeChangesInstantly(t *testing.T) {
	svc := services.NewCassandra()
	mb, err := NewModelBased(cloud.Large, svc.MinInstances, svc.MaxInstances, svc.SLO())
	if err != nil {
		t.Fatal(err)
	}
	// Warm-up plateau for calibration, then volume steps.
	loads := make([]float64, 240)
	for i := range loads {
		switch {
		case i < 60:
			loads[i] = 150
		case i < 120:
			loads[i] = 300
		case i < 180:
			loads[i] = 450
		default:
			loads[i] = 150
		}
	}
	tr := &trace.Trace{Name: "steps", Step: time.Minute, Loads: loads}
	res, err := sim.Run(sim.Config{
		Service:    svc,
		Trace:      tr,
		Controller: mb,
		Initial:    cloud.Allocation{Type: cloud.Large, Count: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Volume-only changes: no recalibration.
	if mb.Recalibrations() != 0 {
		t.Errorf("volume changes triggered %d recalibrations", mb.Recalibrations())
	}
	// After the initial calibration window, the SLO is held except
	// warm-up/stabilization transients.
	bad := 0
	for _, rec := range res.Records[60:] {
		if rec.SLOViolated {
			bad++
		}
	}
	if frac := float64(bad) / float64(len(res.Records)-60); frac > 0.3 {
		t.Errorf("post-calibration violations=%v want <= 0.3", frac)
	}
	// It must actually scale with the volume.
	if res.Decisions < 3 {
		t.Errorf("decisions=%d want >= 3", res.Decisions)
	}
	for _, d := range mb.AdaptationTimes() {
		if d != 0 {
			t.Errorf("model evaluation should be instant, got %v", d)
		}
	}
}

func TestModelBasedRecalibratesOnMixChange(t *testing.T) {
	svc := services.NewCassandra()
	mb, err := NewModelBased(cloud.Large, svc.MinInstances, svc.MaxInstances, svc.SLO())
	if err != nil {
		t.Fatal(err)
	}
	mb.CalibrationTime = 10 * time.Minute

	heavy := svc.DefaultMix()    // demand 1.0
	light := svc.ReadMostlyMix() // demand 0.75
	loads := make([]float64, 240)
	for i := range loads {
		loads[i] = 300
	}
	tr := &trace.Trace{Name: "mixswitch", Step: time.Minute, Loads: loads}
	res, err := sim.Run(sim.Config{
		Service:    svc,
		Trace:      tr,
		Controller: mb,
		Initial:    cloud.Allocation{Type: cloud.Large, Count: 6},
		MixFn: func(now time.Duration) services.Mix {
			// Switch the request mix twice.
			switch {
			case now < 80*time.Minute:
				return heavy
			case now < 160*time.Minute:
				return light
			default:
				return heavy
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if mb.Recalibrations() < 2 {
		t.Errorf("mix switches should force recalibrations, got %d", mb.Recalibrations())
	}
	_ = res
}

func TestModelBasedWaitsForUsableObservation(t *testing.T) {
	svc := services.NewCassandra()
	mb, _ := NewModelBased(cloud.Large, 2, 10, svc.SLO())
	// Saturated observation (rho >= 0.95): calibration must wait.
	obs := sim.Observation{
		Workload:         services.Workload{Clients: 5000, Mix: svc.DefaultMix()},
		Perf:             svc.Perf(services.Workload{Clients: 5000, Mix: svc.DefaultMix()}, 2),
		Allocation:       cloud.Allocation{Type: cloud.Large, Count: 2},
		TargetAllocation: cloud.Allocation{Type: cloud.Large, Count: 2},
	}
	act, err := mb.Step(&obs)
	if err != nil {
		t.Fatal(err)
	}
	if act.Target != nil {
		t.Error("uncalibrated controller must not act on a saturated sample")
	}
}
