// Package baseline implements the resource-management policies DejaVu
// is compared against in the paper's evaluation: the fixed
// full-capacity overprovisioning reference, the time-based Autopilot
// controller that blindly repeats the learning day's allocations, a
// RightScale-style threshold-voting autoscaler reproduced from public
// information (paper §4.1), and the state-of-the-art "always re-tune"
// controller behind the motivating Figure 1.
package baseline

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/services"
	"repro/internal/sim"
)

// FixedMax always keeps the service's full-capacity allocation — the
// paper's overprovisioning reference ("the approach that always
// overprovisions the service to ensure the SLO is met").
type FixedMax struct {
	// Allocation is the full-capacity configuration.
	Allocation cloud.Allocation
}

// NewFixedMax returns the overprovisioning controller for a service.
func NewFixedMax(svc services.Service) *FixedMax {
	return &FixedMax{Allocation: svc.MaxAllocation()}
}

// Name implements sim.Controller.
func (f *FixedMax) Name() string { return "fixedmax" }

// Step implements sim.Controller.
func (f *FixedMax) Step(obs *sim.Observation) (sim.Action, error) {
	if obs.TargetAllocation.Equal(f.Allocation) {
		return sim.Action{}, nil
	}
	target := f.Allocation
	return sim.Action{Target: &target}, nil
}

// Autopilot repeats the hourly resource allocations learned during the
// first day of the trace at the corresponding hours of later days
// ("a time-based controller which attempts to leverage the re-occurring
// patterns in the workload by repeating the resource allocations
// determined during the learning phase at appropriate times").
type Autopilot struct {
	// Schedule holds one allocation per hour of day.
	Schedule [24]cloud.Allocation
}

// LearnAutopilotSchedule tunes one allocation per learning-day hour.
// workloads must contain exactly 24 hourly workloads.
func LearnAutopilotSchedule(tuner core.Tuner, workloads []services.Workload) (*Autopilot, error) {
	if len(workloads) != 24 {
		return nil, fmt.Errorf("baseline: autopilot needs 24 hourly workloads, got %d", len(workloads))
	}
	if tuner == nil {
		return nil, errors.New("baseline: nil tuner")
	}
	ap := &Autopilot{}
	for h, w := range workloads {
		alloc, err := tuner.Tune(w, 0)
		if err != nil {
			return nil, fmt.Errorf("baseline: tuning hour %d: %w", h, err)
		}
		ap.Schedule[h] = alloc
	}
	return ap, nil
}

// Name implements sim.Controller.
func (a *Autopilot) Name() string { return "autopilot" }

// Step implements sim.Controller: apply the allocation recorded for
// this hour of day. The decision itself is instantaneous (a timer).
func (a *Autopilot) Step(obs *sim.Observation) (sim.Action, error) {
	hour := int(obs.Now/time.Hour) % 24
	want := a.Schedule[hour]
	if err := want.Validate(); err != nil {
		return sim.Action{}, fmt.Errorf("baseline: autopilot hour %d: %w", hour, err)
	}
	if obs.TargetAllocation.Equal(want) {
		return sim.Action{}, nil
	}
	target := want
	return sim.Action{Target: &target}, nil
}

// RightScale reproduces the RightScale autoscaling algorithm from the
// paper's description: "If the majority of VMs report utilization that
// is higher than the predefined threshold, the scale-up action is
// taken by increasing the number of instances (by two at a time, by
// default). In contrast, if the instances agree that the overall
// utilization is below the specified threshold, the scaling down is
// performed (decrease the number of instances by one, by default)",
// with a "resize calm time" between successive adjustments.
type RightScale struct {
	// Type is the instance type to scale.
	Type cloud.InstanceType
	// Min and Max bound the instance count.
	Min, Max int
	// UpThreshold and DownThreshold are the utilization votes.
	UpThreshold, DownThreshold float64
	// UpStep and DownStep are the resize increments (defaults +2/-1).
	UpStep, DownStep int
	// CalmTime is the minimum time between successive resizes
	// (paper: 3 minutes minimum, 15 minutes recommended).
	CalmTime time.Duration

	lastResize    time.Duration
	inEpisode     bool
	episodeStart  time.Duration
	episodeSizes  int
	episodes      []time.Duration
	everConverged bool
}

// NewRightScale returns a RightScale controller with the defaults the
// paper assumes.
func NewRightScale(typ cloud.InstanceType, min, max int, calm time.Duration) (*RightScale, error) {
	if min <= 0 || max < min {
		return nil, fmt.Errorf("baseline: bad rightscale range [%d, %d]", min, max)
	}
	if calm <= 0 {
		return nil, errors.New("baseline: calm time must be positive")
	}
	return &RightScale{
		Type:          typ,
		Min:           min,
		Max:           max,
		UpThreshold:   0.80,
		DownThreshold: 0.40,
		UpStep:        2,
		DownStep:      1,
		CalmTime:      calm,
		lastResize:    -1 << 62,
	}, nil
}

// Name implements sim.Controller.
func (r *RightScale) Name() string { return "rightscale" }

// Step implements sim.Controller.
func (r *RightScale) Step(obs *sim.Observation) (sim.Action, error) {
	// Within the calm period RightScale must "first observe the
	// reconfigured service before it can take any other resizing
	// action".
	if obs.Now-r.lastResize < r.CalmTime {
		return sim.Action{}, nil
	}
	rho := obs.Perf.Utilization
	count := obs.TargetAllocation.Count
	next := count
	switch {
	case rho > r.UpThreshold:
		next = count + r.UpStep
	case rho < r.DownThreshold:
		next = count - r.DownStep
	}
	if next > r.Max {
		next = r.Max
	}
	if next < r.Min {
		next = r.Min
	}
	if next == count {
		// Converged: close any open adaptation episode. The paper
		// counts a single sufficient resize as instantaneous, so
		// the episode cost is (resizes-1) x calm time.
		if r.inEpisode {
			r.episodes = append(r.episodes, time.Duration(r.episodeSizes-1)*r.CalmTime)
			r.inEpisode = false
			r.everConverged = true
		}
		return sim.Action{}, nil
	}
	if !r.inEpisode {
		r.inEpisode = true
		r.episodeStart = obs.Now
		r.episodeSizes = 0
	}
	r.episodeSizes++
	r.lastResize = obs.Now
	target := cloud.Allocation{Type: r.Type, Count: next}
	return sim.Action{Target: &target}, nil
}

// AdaptationTimes returns the per-episode convergence times:
// (resizes-1) x calm time, matching the paper's accounting for
// Figure 8.
func (r *RightScale) AdaptationTimes() []time.Duration {
	return append([]time.Duration(nil), r.episodes...)
}

// Retuner is the state-of-the-art controller of Figure 1: every time
// it detects a workload change it re-runs the full experimental tuning
// process, leaving the service with a stale allocation for the entire
// tuning duration.
type Retuner struct {
	// Tuner runs the experiments.
	Tuner core.Tuner
	// ChangeThreshold is the relative load change that triggers
	// re-tuning (default 0.15).
	ChangeThreshold float64

	lastTunedClients float64
	busyUntil        time.Duration
	adaptations      []time.Duration
}

// NewRetuner wraps a tuner into the always-re-tune controller.
func NewRetuner(tuner core.Tuner) (*Retuner, error) {
	if tuner == nil {
		return nil, errors.New("baseline: nil tuner")
	}
	return &Retuner{Tuner: tuner, ChangeThreshold: 0.15, lastTunedClients: -1, busyUntil: -1}, nil
}

// Name implements sim.Controller.
func (rt *Retuner) Name() string { return "retuner" }

// Step implements sim.Controller.
func (rt *Retuner) Step(obs *sim.Observation) (sim.Action, error) {
	if obs.Now < rt.busyUntil {
		return sim.Action{}, nil // still "running experiments"
	}
	clients := obs.Workload.Clients
	if rt.lastTunedClients >= 0 {
		ref := rt.lastTunedClients
		if ref <= 0 {
			ref = 1
		}
		if abs(clients-rt.lastTunedClients)/ref < rt.ChangeThreshold {
			return sim.Action{}, nil
		}
	}
	alloc, err := rt.Tuner.Tune(obs.Workload, 0)
	if err != nil {
		return sim.Action{}, err
	}
	d := rt.Tuner.Duration()
	rt.lastTunedClients = clients
	rt.busyUntil = obs.Now + d
	rt.adaptations = append(rt.adaptations, d)
	if alloc.Equal(obs.TargetAllocation) {
		return sim.Action{}, nil
	}
	target := alloc
	return sim.Action{Target: &target, DecisionTime: d}, nil
}

// AdaptationTimes returns the tuning duration of every re-tuning
// episode.
func (rt *Retuner) AdaptationTimes() []time.Duration {
	return append([]time.Duration(nil), rt.adaptations...)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

var (
	_ sim.Controller = (*FixedMax)(nil)
	_ sim.Controller = (*Autopilot)(nil)
	_ sim.Controller = (*RightScale)(nil)
	_ sim.Controller = (*Retuner)(nil)
)
