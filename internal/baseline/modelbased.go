package baseline

import (
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/cloud"
	"repro/internal/services"
	"repro/internal/sim"
)

// ModelBased is the other state-of-the-art family the paper positions
// DejaVu against: analytical performance models (queueing-based, as in
// Urgaonkar et al. / Watson et al.). Once calibrated, the model
// evaluates any candidate allocation instantly — but "it also
// typically requires time-consuming (and often manual) re-calibration
// and re-validation whenever workloads change appreciably".
//
// The controller fits an open-system latency model
//
//	L = base / (1 - rho),   rho = clients * demand / capacity
//
// from production observations (base latency and per-client demand are
// the calibrated parameters), plans capacity analytically against the
// latency SLO, and detects model drift by comparing predictions with
// measurements. A drift — e.g. a request-mix change that alters the
// per-client demand — forces a re-calibration pause during which the
// allocation is frozen.
type ModelBased struct {
	// Type is the instance type to scale; Min and Max bound the
	// count.
	Type     cloud.InstanceType
	Min, Max int
	// SLO is the latency objective the model plans against.
	SLO services.SLO
	// TargetMargin plans for TargetMargin*SLO latency (default 0.9).
	TargetMargin float64
	// CalibrationTime is the cost of (re)building and validating the
	// model (default 10 minutes; the paper: "time-consuming ...
	// re-calibration and re-validation").
	CalibrationTime time.Duration
	// DriftTolerance is the relative prediction error that triggers
	// re-calibration (default 0.25).
	DriftTolerance float64

	calibrated     bool
	baseLatencyMs  float64
	demandPerUnit  float64 // capacity units consumed per client
	busyUntil      time.Duration
	recalibrations int
	adaptations    []time.Duration
}

// NewModelBased validates and returns the controller.
func NewModelBased(typ cloud.InstanceType, min, max int, slo services.SLO) (*ModelBased, error) {
	if min <= 0 || max < min {
		return nil, fmt.Errorf("baseline: bad model-based range [%d, %d]", min, max)
	}
	if slo.MaxLatencyMs <= 0 {
		return nil, errors.New("baseline: model-based controller needs a latency SLO")
	}
	return &ModelBased{
		Type:            typ,
		Min:             min,
		Max:             max,
		SLO:             slo,
		TargetMargin:    0.9,
		CalibrationTime: 10 * time.Minute,
		DriftTolerance:  0.25,
		busyUntil:       -1,
	}, nil
}

// Name implements sim.Controller.
func (m *ModelBased) Name() string { return "modelbased" }

// Step implements sim.Controller.
func (m *ModelBased) Step(obs *sim.Observation) (sim.Action, error) {
	if obs.Now < m.busyUntil {
		return sim.Action{}, nil // model being (re)built and validated
	}
	rho := obs.Perf.Utilization
	lat := obs.Perf.LatencyMs
	clients := obs.Workload.Clients
	capacity := obs.Allocation.Capacity()

	usable := rho > 0.02 && rho < 0.95 && clients > 0 && capacity > 0 && lat > 0

	if !m.calibrated {
		if !usable {
			return sim.Action{}, nil // wait for an informative observation
		}
		m.calibrate(obs.Now, lat, rho, clients, capacity)
		return sim.Action{}, nil
	}

	// Drift check: a mix change alters the per-client demand, so the
	// model's latency prediction diverges from measurements.
	if usable {
		predictedRho := clients * m.demandPerUnit / capacity
		predictedLat := m.predictLatency(predictedRho)
		if relErr(predictedLat, lat) > m.DriftTolerance {
			m.recalibrations++
			m.calibrate(obs.Now, lat, rho, clients, capacity)
			return sim.Action{}, nil
		}
	}

	// Analytical capacity planning: instant once calibrated.
	targetLat := m.SLO.MaxLatencyMs * m.TargetMargin
	if targetLat <= m.baseLatencyMs {
		targetLat = m.baseLatencyMs * 1.1
	}
	targetRho := 1 - m.baseLatencyMs/targetLat
	needed := clients * m.demandPerUnit / targetRho
	count := int(math.Ceil(needed / m.Type.Capacity))
	if count < m.Min {
		count = m.Min
	}
	if count > m.Max {
		count = m.Max
	}
	target := cloud.Allocation{Type: m.Type, Count: count}
	if target.Equal(obs.TargetAllocation) {
		return sim.Action{}, nil
	}
	m.adaptations = append(m.adaptations, 0) // model evaluation is instantaneous
	return sim.Action{Target: &target}, nil
}

// calibrate fits the model parameters from one production observation
// and pays the validation pause.
func (m *ModelBased) calibrate(now time.Duration, lat, rho, clients, capacity float64) {
	m.baseLatencyMs = lat * (1 - rho)
	m.demandPerUnit = rho * capacity / clients
	m.calibrated = true
	m.busyUntil = now + m.CalibrationTime
}

func (m *ModelBased) predictLatency(rho float64) float64 {
	if rho >= 0.98 {
		rho = 0.98
	}
	if rho < 0 {
		rho = 0
	}
	return m.baseLatencyMs / (1 - rho)
}

// Recalibrations reports how many drift-triggered model rebuilds
// happened (excluding the initial calibration).
func (m *ModelBased) Recalibrations() int { return m.recalibrations }

// AdaptationTimes implements the same accounting as the other
// controllers: allocation changes are instant once the model is valid;
// the real cost sits in the calibration pauses.
func (m *ModelBased) AdaptationTimes() []time.Duration {
	return append([]time.Duration(nil), m.adaptations...)
}

func relErr(predicted, measured float64) float64 {
	if measured == 0 {
		return 0
	}
	return math.Abs(predicted-measured) / measured
}

var _ sim.Controller = (*ModelBased)(nil)
